//! The **RayTrace** benchmark (DIS Ray Tracing): rays marching through a
//! uniform spatial grid with object gathers and floating-point
//! intersection work.
//!
//! Rays step across a `g × g` cell grid in Q16 fixed point (the address
//! arithmetic must stay on the integer side so the Access Processor can
//! run it — see DESIGN.md). Occupied cells trigger a gather of the
//! object's parameters and a floating-point accumulation, keeping the
//! Computation Processor busy while the AP streams the grid.

use crate::gen;
use crate::layout::{REGION_A, REGION_B, REGION_C, RESULT};
use crate::Workload;
use hidisc_isa::asm::assemble;
use hidisc_isa::mem::Memory;
use hidisc_isa::IntReg;
use rand::Rng;

/// RayTrace parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Grid dimension (power of two).
    pub grid: usize,
    /// Number of objects.
    pub objects: usize,
    /// Fraction of occupied cells, percent.
    pub occupancy_pct: u32,
    /// Number of rays.
    pub rays: usize,
    /// Steps marched per ray.
    pub steps: usize,
}

impl Params {
    /// Sizes per scale.
    pub fn at(scale: crate::Scale) -> Params {
        match scale {
            crate::Scale::Test => Params {
                grid: 32,
                objects: 16,
                occupancy_pct: 30,
                rays: 8,
                steps: 50,
            },
            crate::Scale::Paper => Params {
                grid: 64,
                objects: 64,
                occupancy_pct: 25,
                rays: 64,
                steps: 400,
            },
            crate::Scale::Large => Params {
                grid: 128,
                objects: 128,
                occupancy_pct: 25,
                rays: 128,
                steps: 800,
            },
        }
    }
}

/// Builds the workload.
pub fn build(p: &Params, seed: u64) -> Workload {
    assert!(p.grid.is_power_of_two());
    let mut rng = gen::rng(0x1007, seed);
    let g = p.grid;

    // Grid of object ids (0 = empty).
    let grid: Vec<i64> = (0..g * g)
        .map(|_| {
            if rng.gen_range(0..100u32) < p.occupancy_pct {
                rng.gen_range(1..=p.objects as i64)
            } else {
                0
            }
        })
        .collect();
    // Object table: 3 f64 parameters per object (slot 0 unused).
    let objs: Vec<(f64, f64, f64)> = (0..=p.objects)
        .map(|_| {
            (
                rng.gen_range(-4.0..4.0),
                rng.gen_range(-4.0..4.0),
                rng.gen_range(0.1..2.0),
            )
        })
        .collect();
    // Rays: Q16 fixed-point position and direction.
    let rays: Vec<[i64; 4]> = (0..p.rays)
        .map(|_| {
            [
                rng.gen_range(0..(g as i64) << 16),
                rng.gen_range(0..(g as i64) << 16),
                rng.gen_range(-(3 << 16)..3 << 16),
                rng.gen_range(-(3 << 16)..3 << 16),
            ]
        })
        .collect();

    let mut mem = Memory::new();
    for (i, &c) in grid.iter().enumerate() {
        mem.write_i64(REGION_A + 8 * i as u64, c).unwrap();
    }
    for (i, &(a, b, c)) in objs.iter().enumerate() {
        let base = REGION_B + 24 * i as u64;
        mem.write_f64(base, a).unwrap();
        mem.write_f64(base + 8, b).unwrap();
        mem.write_f64(base + 16, c).unwrap();
    }
    for (i, r) in rays.iter().enumerate() {
        let base = REGION_C + 32 * i as u64;
        for (k, &v) in r.iter().enumerate() {
            mem.write_i64(base + 8 * k as u64, v).unwrap();
        }
    }

    // Native reference, mirroring the kernel's operation order exactly so
    // the f64 accumulation is bit-identical.
    let mask = (g - 1) as i64;
    let mut acc: f64 = 0.0;
    for r in &rays {
        let (mut x, mut y, dx, dy) = (r[0], r[1], r[2], r[3]);
        for _ in 0..p.steps {
            let cx = (((x as u64) >> 16) as i64) & mask;
            let cy = (((y as u64) >> 16) as i64) & mask;
            let cell = grid[(cy * g as i64 + cx) as usize];
            if cell != 0 {
                let (a, b, c) = objs[cell as usize];
                acc += a * b + c;
            }
            x = x.wrapping_add(dx);
            y = y.wrapping_add(dy);
        }
    }

    let src = format!(
        r"
            li r12, 0           ; ray index
        rays:
            mul r2, r12, 32
            add r3, r8, r2
            ld r20, 0(r3)       ; x
            ld r21, 8(r3)       ; y
            ld r22, 16(r3)      ; dx
            ld r23, 24(r3)      ; dy
            add r24, r17, 0     ; step counter
        step:
            srl r4, r20, 16
            and r4, r4, r18
            srl r5, r21, 16
            and r5, r5, r18
            mul r5, r5, {g}
            add r4, r4, r5
            sll r4, r4, 3
            add r4, r9, r4
            ld r6, 0(r4)        ; object id
            beq r6, r0, nohit
            mul r7, r6, 24
            add r7, r13, r7
            l.d f1, 0(r7)
            l.d f2, 8(r7)
            l.d f3, 16(r7)
            mul.d f4, f1, f2
            add.d f4, f4, f3
            add.d f10, f10, f4
        nohit:
            add r20, r20, r22
            add r21, r21, r23
            sub r24, r24, 1
            bne r24, r0, step
            add r12, r12, 1
            sub r10, r10, 1
            bne r10, r0, rays
            s.d f10, 0(r11)
            halt
        ",
        g = g,
    );
    let prog = assemble("raytrace", &src).expect("raytrace kernel assembles");

    Workload {
        name: "raytrace",
        prog,
        regs: vec![
            (IntReg::new(8), REGION_C as i64),  // rays
            (IntReg::new(9), REGION_A as i64),  // grid
            (IntReg::new(13), REGION_B as i64), // objects
            (IntReg::new(17), p.steps as i64),
            (IntReg::new(18), mask),
            (IntReg::new(10), p.rays as i64),
            (IntReg::new(11), RESULT as i64),
        ],
        mem,
        max_steps: 40 * (p.rays * p.steps) as u64 + 10_000,
        expected: Some((RESULT, acc.to_bits() as i64)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::interp::Interp;

    #[test]
    fn matches_reference_bit_exactly() {
        let w = build(
            &Params {
                grid: 16,
                objects: 8,
                occupancy_pct: 40,
                rays: 4,
                steps: 30,
            },
            23,
        );
        let mut i = Interp::new(&w.prog, w.mem.clone());
        for &(r, v) in &w.regs {
            i.set_reg(r, v);
        }
        i.run(w.max_steps).unwrap();
        let (addr, want) = w.expected.unwrap();
        assert_eq!(i.mem.read_i64(addr).unwrap(), want);
    }

    #[test]
    fn empty_grid_accumulates_nothing() {
        let mut w = build(
            &Params {
                grid: 8,
                objects: 4,
                occupancy_pct: 0,
                rays: 2,
                steps: 20,
            },
            1,
        );
        let mut i = Interp::new(&w.prog, w.mem.clone());
        for &(r, v) in &w.regs {
            i.set_reg(r, v);
        }
        i.run(w.max_steps).unwrap();
        assert_eq!(i.mem.read_f64(RESULT).unwrap(), 0.0);
        let _ = &mut w;
    }

    #[test]
    fn occupancy_increases_hits() {
        let lo = build(
            &Params {
                grid: 16,
                objects: 8,
                occupancy_pct: 5,
                rays: 4,
                steps: 50,
            },
            2,
        );
        let hi = build(
            &Params {
                grid: 16,
                objects: 8,
                occupancy_pct: 90,
                rays: 4,
                steps: 50,
            },
            2,
        );
        // More occupied cells ⇒ (almost surely) a larger |sum|; just check
        // both run and produce their own references.
        for w in [lo, hi] {
            let mut i = Interp::new(&w.prog, w.mem.clone());
            for &(r, v) in &w.regs {
                i.set_reg(r, v);
            }
            i.run(w.max_steps).unwrap();
            let (addr, want) = w.expected.unwrap();
            assert_eq!(i.mem.read_i64(addr).unwrap(), want);
        }
    }
}
