//! The **Field** stressmark: streaming byte scan with token matching.
//!
//! Scans a large byte field counting occurrences of a token byte while
//! summing all bytes. Accesses are perfectly sequential — 32 byte loads
//! hit each 32-byte L1 block — so the kernel has few cache misses. The
//! paper singles Field out as the benchmark where access/execute
//! decoupling, not CMP prefetching, provides the benefit.

use crate::gen;
use crate::layout::{REGION_A, RESULT};
use crate::Workload;
use hidisc_isa::asm::assemble;
use hidisc_isa::mem::Memory;
use hidisc_isa::IntReg;

/// Field parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Field length in bytes.
    pub len: usize,
}

impl Params {
    /// Sizes per scale.
    pub fn at(scale: crate::Scale) -> Params {
        match scale {
            crate::Scale::Test => Params { len: 4 * 1024 },
            crate::Scale::Paper => Params { len: 192 * 1024 },
            crate::Scale::Large => Params { len: 768 * 1024 },
        }
    }
}

/// The token byte the scan counts.
pub const TOKEN: u8 = b'x';

/// Builds the workload.
pub fn build(p: &Params, seed: u64) -> Workload {
    let mut rng = gen::rng(0x1003, seed);
    let bytes = gen::alphabet_bytes(p.len, b"abcdefgxyz", &mut rng);

    let mut mem = Memory::new();
    mem.write_bytes(REGION_A, &bytes);

    // Native reference.
    let mut count: i64 = 0;
    let mut sum: i64 = 0;
    for &b in &bytes {
        sum += b as i64;
        if b == TOKEN {
            count += 1;
        }
    }
    let expected = count.wrapping_mul(1_000_003).wrapping_add(sum);

    let src = r"
            li r5, 0            ; token count
            li r6, 0            ; byte sum
            li r12, 0           ; i
        loop:
            add r3, r8, r12
            lbu r4, 0(r3)
            add r6, r6, r4
            bne r4, r7, skip
            add r5, r5, 1
        skip:
            add r12, r12, 1
            bne r12, r9, loop
            mul r5, r5, 1000003
            add r5, r5, r6
            sd r5, 0(r10)
            halt
        ";
    let prog = assemble("field", src).expect("field kernel assembles");

    Workload {
        name: "field",
        prog,
        regs: vec![
            (IntReg::new(7), TOKEN as i64),
            (IntReg::new(8), REGION_A as i64),
            (IntReg::new(9), p.len as i64),
            (IntReg::new(10), RESULT as i64),
        ],
        mem,
        max_steps: 20 * p.len as u64 + 10_000,
        expected: Some((RESULT, expected)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::interp::Interp;

    #[test]
    fn matches_reference() {
        let w = build(&Params { len: 2048 }, 21);
        let mut i = Interp::new(&w.prog, w.mem.clone());
        for &(r, v) in &w.regs {
            i.set_reg(r, v);
        }
        i.run(w.max_steps).unwrap();
        let (addr, want) = w.expected.unwrap();
        assert_eq!(i.mem.read_i64(addr).unwrap(), want);
    }

    #[test]
    fn all_tokens_counted() {
        // A field that is entirely the token byte.
        let p = Params { len: 64 };
        let mut w = build(&p, 1);
        w.mem.write_bytes(REGION_A, &[TOKEN; 64]);
        let mut i = Interp::new(&w.prog, w.mem.clone());
        for &(r, v) in &w.regs {
            i.set_reg(r, v);
        }
        i.run(w.max_steps).unwrap();
        let got = i.mem.read_i64(RESULT).unwrap();
        assert_eq!(got, 64 * 1_000_003 + 64 * TOKEN as i64);
    }
}
