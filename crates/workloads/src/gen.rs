//! Seeded synthetic data generators.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for a `(workload, seed)` pair.
pub fn rng(tag: u64, seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(tag.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed)
}

/// A random permutation of `0..n` that is a single cycle — pointer-chase
/// fields built from it are guaranteed to visit all `n` cells before
/// repeating, with no short cycles.
pub fn single_cycle_permutation(n: usize, rng: &mut SmallRng) -> Vec<u32> {
    // Sattolo's algorithm.
    let mut p: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i);
        p.swap(i, j);
    }
    p
}

/// Uniform random i64 values within `0..bound`.
pub fn values(n: usize, bound: i64, rng: &mut SmallRng) -> Vec<i64> {
    (0..n).map(|_| rng.gen_range(0..bound)).collect()
}

/// Uniform random indices within `0..bound`.
pub fn indices(n: usize, bound: usize, rng: &mut SmallRng) -> Vec<u32> {
    (0..n).map(|_| rng.gen_range(0..bound) as u32).collect()
}

/// Random bytes from a small alphabet (for the Field stressmark).
pub fn alphabet_bytes(n: usize, alphabet: &[u8], rng: &mut SmallRng) -> Vec<u8> {
    (0..n)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<i64> = values(16, 100, &mut rng(1, 7));
        let b: Vec<i64> = values(16, 100, &mut rng(1, 7));
        let c: Vec<i64> = values(16, 100, &mut rng(1, 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sattolo_is_single_cycle() {
        let mut r = rng(2, 3);
        for n in [2usize, 5, 64, 257] {
            let p = single_cycle_permutation(n, &mut r);
            // Follow the cycle: must take exactly n steps to return to 0
            // and visit every element.
            let mut seen = vec![false; n];
            let mut at = 0u32;
            for _ in 0..n {
                assert!(!seen[at as usize], "short cycle at n={n}");
                seen[at as usize] = true;
                at = p[at as usize];
            }
            assert_eq!(at, 0, "not a cycle for n={n}");
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn bounds_respected() {
        let mut r = rng(3, 3);
        assert!(values(100, 10, &mut r)
            .iter()
            .all(|&v| (0..10).contains(&v)));
        assert!(indices(100, 7, &mut r).iter().all(|&i| i < 7));
        let bytes = alphabet_bytes(100, b"abc", &mut r);
        assert!(bytes.iter().all(|b| b"abc".contains(b)));
    }
}
