//! SMARTS-style sampled simulation, first-divergence bisection and the
//! simulator-speed artifact, behind `repro --sample`, `repro bisect` and
//! `repro simspeed`.
//!
//! Sampling trades cycle accuracy for wall-clock speed: detailed windows
//! measure CPI, functional warm phases execute the instructions in
//! between, and the total cycle count is extrapolated with a reported
//! confidence band ([`hidisc::SampledStats`]). Architectural results stay
//! exact — every instruction executes — so the figure pipelines
//! (`fig8`/`fig9`) work unchanged on sampled statistics.

use crate::{check_models_agree, env_of, pool, prepare, Report, SuiteResult};
use hidisc::{Machine, MachineConfig, MachineStats, Model, SampledStats};
use hidisc_slicer::{compile, CompilerConfig};
use hidisc_workloads::Scale;

/// Default sampling regime of `repro --sample` (detail:skip pacing-core
/// instructions). One detailed window of 2 000 instructions per 20 000
/// skipped keeps the detailed fraction under 10%.
pub const DEFAULT_SAMPLE: (u64, u64) = (2000, 20_000);

/// The documented relative error band of sampled cycle estimates on the
/// shipped suite (see DESIGN.md §16): CI and `repro sample` fail a run
/// whose estimate misses the exact count by more than
/// `max(rel_error_band, SAMPLE_ERROR_BUDGET)`.
pub const SAMPLE_ERROR_BUDGET: f64 = 0.02;

/// Sampling regime of the `repro simspeed` acceptance row: 2 000 detailed
/// instructions per 120 000 skipped pushes the detailed fraction near the
/// functional-execution floor, where [`SIMSPEED_WORKLOAD`] stays inside
/// the 2% error budget at better than 5x wall clock (Paper scale).
pub const SIMSPEED_SAMPLE: (u64, u64) = (2000, 120_000);

/// The workload carrying the simspeed acceptance row. `field` has stable
/// per-window CPI across its whole run, so even very large skips keep the
/// extrapolated cycle count inside the budget.
pub const SIMSPEED_WORKLOAD: &str = "field";

/// Wall-clock repetitions inside [`compare_sampled`]: the reported
/// milliseconds are the minimum over this many runs. Simulated results are
/// deterministic across repetitions; only the host timing varies, and
/// Paper-scale runs finish in tens of milliseconds where scheduler jitter
/// would otherwise dominate the recorded speed-up.
const TIMING_REPS: u32 = 3;

/// Converts a sampled run into the [`MachineStats`] shape the figure
/// pipelines consume: the extrapolated cycle count replaces the raw mixed
/// (detailed + warm) iteration count.
pub fn sampled_machine_stats(s: SampledStats) -> MachineStats {
    let mut st = s.stats;
    st.cycles = s.est_cycles;
    st
}

/// Sampled variant of [`crate::run_suite`]: every (benchmark × model)
/// cell runs in sampling mode on the worker pool. The cross-model memory
/// check still applies — sampling must not change architectural results.
pub fn run_suite_sampled(
    scale: Scale,
    seed: u64,
    cfg: MachineConfig,
    detail: u64,
    skip: u64,
) -> Vec<SuiteResult> {
    let workloads = hidisc_workloads::suite(scale, seed);
    let prepared = pool::run_indexed(workloads.len(), |i| prepare(&workloads[i]));
    let nm = Model::ALL.len();
    let stats = pool::run_indexed(prepared.len() * nm, |k| {
        let p = &prepared[k / nm];
        let m = Model::ALL[k % nm];
        let mut machine = Machine::new(m, &p.compiled, &p.env, cfg);
        let s = machine
            .run_sampled(p.compiled.profile.dyn_instrs, detail, skip)
            .unwrap_or_else(|e| panic!("{} on {m} (sampled): {e}", p.name));
        sampled_machine_stats(s)
    });
    prepared
        .iter()
        .zip(stats.chunks(nm))
        .map(|(p, per_model)| {
            check_models_agree(p.name, per_model);
            SuiteResult {
                name: p.name,
                per_model: per_model.to_vec(),
            }
        })
        .collect()
}

/// One exact-vs-sampled comparison of a workload on one model.
#[derive(Debug, Clone)]
pub struct SampleComparison {
    pub name: String,
    pub model: Model,
    /// Cycle count of the exact detailed run.
    pub exact_cycles: u64,
    /// Extrapolated cycle count of the sampled run.
    pub est_cycles: u64,
    /// Reported 95% confidence half-width (relative) of the estimate.
    pub rel_error_band: f64,
    /// Detailed windows that contributed to the estimate.
    pub windows: usize,
    /// Host milliseconds of the exact run.
    pub exact_ms: f64,
    /// Host milliseconds of the sampled run.
    pub sampled_ms: f64,
}

impl SampleComparison {
    /// Signed relative error of the estimate against the exact count.
    pub fn rel_error(&self) -> f64 {
        self.est_cycles as f64 / self.exact_cycles as f64 - 1.0
    }

    /// Wall-clock speed-up of sampling over the exact run.
    pub fn speedup(&self) -> f64 {
        if self.sampled_ms > 0.0 {
            self.exact_ms / self.sampled_ms
        } else {
            0.0
        }
    }

    /// True when the estimate lands inside the acceptance band
    /// (`max(rel_error_band, SAMPLE_ERROR_BUDGET)`).
    pub fn within_band(&self) -> bool {
        self.rel_error().abs() <= self.rel_error_band.max(SAMPLE_ERROR_BUDGET)
    }
}

/// Runs `name` on `model` both exact and sampled and compares. The
/// sampled run must reproduce the exact memory checksum and committed
/// instruction counts (sampling idealises timing, never results). Each
/// variant runs [`TIMING_REPS`] times and reports the minimum wall clock.
pub fn compare_sampled(
    name: &str,
    scale: Scale,
    seed: u64,
    model: Model,
    cfg: MachineConfig,
    detail: u64,
    skip: u64,
) -> SampleComparison {
    let w = hidisc_workloads::by_name(name, scale, seed)
        .unwrap_or_else(|| panic!("unknown workload {name}"));
    let env = env_of(&w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default())
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
    let work = compiled.profile.dyn_instrs;

    let mut exact_ms = f64::INFINITY;
    let mut exact = None;
    for _ in 0..TIMING_REPS {
        let s = hidisc::run_model(model, &compiled, &env, cfg)
            .unwrap_or_else(|e| panic!("{name} on {model}: {e}"));
        exact_ms = exact_ms.min(s.host_wall_ns as f64 / 1e6);
        exact = Some(s);
    }
    let exact = exact.expect("TIMING_REPS >= 1");

    let mut sampled_ms = f64::INFINITY;
    let mut sampled = None;
    for _ in 0..TIMING_REPS {
        let mut machine = Machine::new(model, &compiled, &env, cfg);
        let s = machine
            .run_sampled(work, detail, skip)
            .unwrap_or_else(|e| panic!("{name} on {model} (sampled): {e}"));
        sampled_ms = sampled_ms.min(s.stats.host_wall_ns as f64 / 1e6);
        sampled = Some(s);
    }
    let sampled = sampled.expect("TIMING_REPS >= 1");

    assert_eq!(
        sampled.stats.mem_checksum, exact.mem_checksum,
        "{name} on {model}: sampling changed architectural results"
    );
    assert_eq!(
        sampled.stats.total_committed(),
        exact.total_committed(),
        "{name} on {model}: sampling changed committed instruction counts"
    );

    SampleComparison {
        name: name.to_string(),
        model,
        exact_cycles: exact.cycles,
        est_cycles: sampled.est_cycles,
        rel_error_band: sampled.rel_error_band,
        windows: sampled.windows,
        exact_ms,
        sampled_ms,
    }
}

/// [`Report`] for `repro sample`: exact-vs-sampled rows for one workload
/// across all models.
#[derive(Debug, Clone)]
pub struct SampleReport(pub Vec<SampleComparison>);

impl SampleReport {
    /// True when every row's estimate is inside its acceptance band.
    pub fn passed(&self) -> bool {
        self.0.iter().all(|c| c.within_band())
    }
}

impl Report for SampleReport {
    fn render_text(&self) -> String {
        let mut out = String::from(
            "Sampled simulation vs exact (cycle estimate, 95% band, wall clock)\n\
             model         exact-cyc    est-cyc   err%   band%  win  exact-ms  sampled-ms  speedup\n",
        );
        for c in &self.0 {
            out.push_str(&format!(
                "{:<12} {:>10} {:>10} {:>6.2} {:>7.2} {:>4} {:>9.1} {:>11.1} {:>7.2}x {}\n",
                format!("{}", c.model),
                c.exact_cycles,
                c.est_cycles,
                100.0 * c.rel_error(),
                100.0 * c.rel_error_band,
                c.windows,
                c.exact_ms,
                c.sampled_ms,
                c.speedup(),
                if c.within_band() { "ok" } else { "MISS" },
            ));
        }
        out
    }

    fn render_csv(&self) -> String {
        let mut out = String::from(
            "workload,model,exact_cycles,est_cycles,rel_error,rel_error_band,windows,\
             exact_ms,sampled_ms,speedup,within_band\n",
        );
        for c in &self.0 {
            out.push_str(&format!(
                "{},{},{},{},{:.6},{:.6},{},{:.3},{:.3},{:.3},{}\n",
                c.name,
                c.model,
                c.exact_cycles,
                c.est_cycles,
                c.rel_error(),
                c.rel_error_band,
                c.windows,
                c.exact_ms,
                c.sampled_ms,
                c.speedup(),
                c.within_band(),
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Bisecting the first architectural divergence of two configurations
// ---------------------------------------------------------------------------

/// Result of [`bisect`]: the first cycle at which two configurations'
/// architectural state digests differ.
#[derive(Debug, Clone)]
pub struct BisectResult {
    pub name: String,
    pub model: Model,
    /// End-of-run cycle count under configuration A.
    pub end_a: u64,
    /// End-of-run cycle count under configuration B.
    pub end_b: u64,
    /// First cycle (≤ `min(end_a, end_b)`) where
    /// [`Machine::state_digest`] differs, or `None` when the digests still
    /// match at the comparison horizon.
    pub first_divergence: Option<u64>,
    /// Bisection probes performed.
    pub probes: u32,
}

/// Binary-searches the first cycle at which running `name` under `cfg_a`
/// and `cfg_b` produces different architectural state ([`Machine::state_digest`]:
/// committed counts, registers, resume pcs, queue contents, memory).
///
/// The search keeps a snapshot of both machines at the highest cycle
/// known to agree and probes by restore + [`Machine::run_to_cycle`], so
/// each probe replays only the `lo..mid` segment. Divergence is assumed
/// to persist up to the comparison horizon `min(end_a, end_b)` — true for
/// timing divergences, which is what differing configurations produce; if
/// the digests match at the horizon the result is `None`.
pub fn bisect(
    name: &str,
    scale: Scale,
    seed: u64,
    model: Model,
    cfg_a: MachineConfig,
    cfg_b: MachineConfig,
) -> BisectResult {
    let w = hidisc_workloads::by_name(name, scale, seed)
        .unwrap_or_else(|| panic!("unknown workload {name}"));
    let env = env_of(&w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default())
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));

    let run_end = |cfg: MachineConfig| {
        hidisc::run_model(model, &compiled, &env, cfg)
            .unwrap_or_else(|e| panic!("{name} on {model}: {e}"))
            .cycles
    };
    let (end_a, end_b) = (run_end(cfg_a), run_end(cfg_b));
    let horizon = end_a.min(end_b);

    // Machines pinned at `lo`, the highest cycle known to agree.
    let mut lo_a = Machine::new(model, &compiled, &env, cfg_a);
    let mut lo_b = Machine::new(model, &compiled, &env, cfg_b);
    assert_eq!(
        lo_a.state_digest(),
        lo_b.state_digest(),
        "{name} on {model}: initial states differ — nothing to bisect"
    );
    let mut lo = 0u64;
    let mut probes = 0u32;

    // One probe: advance clones of the `lo` machines to cycle `c` and
    // compare digests, returning the advanced machines for reuse.
    let probe = |lo_a: &Machine, lo_b: &Machine, c: u64| -> (bool, Machine, Machine) {
        let mut a = lo_a.clone();
        let mut b = lo_b.clone();
        a.run_to_cycle(c)
            .unwrap_or_else(|e| panic!("{name} on {model} (A): {e}"));
        b.run_to_cycle(c)
            .unwrap_or_else(|e| panic!("{name} on {model} (B): {e}"));
        (a.state_digest() != b.state_digest(), a, b)
    };

    let (diverged_at_horizon, _, _) = probe(&lo_a, &lo_b, horizon);
    probes += 1;
    if !diverged_at_horizon {
        return BisectResult {
            name: name.to_string(),
            model,
            end_a,
            end_b,
            first_divergence: None,
            probes,
        };
    }

    let mut hi = horizon;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let (diverged, a, b) = probe(&lo_a, &lo_b, mid);
        probes += 1;
        if diverged {
            hi = mid;
        } else {
            lo = mid;
            lo_a = a;
            lo_b = b;
        }
    }
    BisectResult {
        name: name.to_string(),
        model,
        end_a,
        end_b,
        first_divergence: Some(hi),
        probes,
    }
}

/// [`Report`] for `repro bisect`.
#[derive(Debug, Clone)]
pub struct BisectReport(pub BisectResult);

impl Report for BisectReport {
    fn render_text(&self) -> String {
        let r = &self.0;
        let verdict = match r.first_divergence {
            Some(c) => format!(
                "first architectural divergence at cycle {c} \
                 (digests agree through cycle {})",
                c - 1
            ),
            None => format!(
                "no architectural divergence through cycle {} (comparison horizon)",
                r.end_a.min(r.end_b)
            ),
        };
        format!(
            "bisect {} on {}: config A ends at cycle {}, config B at {}\n{verdict} — {} probe(s)\n",
            r.name, r.model, r.end_a, r.end_b, r.probes
        )
    }

    fn render_csv(&self) -> String {
        let r = &self.0;
        format!(
            "workload,model,end_a,end_b,first_divergence,probes\n{},{},{},{},{},{}\n",
            r.name,
            r.model,
            r.end_a,
            r.end_b,
            r.first_divergence
                .map(|c| c.to_string())
                .unwrap_or_default(),
            r.probes
        )
    }
}

// ---------------------------------------------------------------------------
// Simulator-speed artifact: `repro simspeed --format json`
// ---------------------------------------------------------------------------

/// The `repro simspeed` artifact: per-benchmark host cost of the exact
/// suite, aggregate MSIPS, and the sampled-mode comparisons that document
/// the speed-up/error trade-off (`BENCH_simspeed.json` in CI).
#[derive(Debug, Clone)]
pub struct SimspeedReport {
    /// Suite scale the measurements were taken at.
    pub scale: Scale,
    /// Workload seed.
    pub seed: u64,
    /// Per-benchmark host milliseconds (all four models, exact runs) with
    /// committed-instruction and cycle totals.
    pub benchmarks: Vec<(String, f64, u64, u64)>,
    /// Suite aggregate: committed instructions per host microsecond
    /// (MSIPS), summed over all exact runs.
    pub suite_msips: f64,
    /// Sampling regime the comparisons ran under (detail, skip).
    pub sample: (u64, u64),
    /// Exact-vs-sampled comparisons (the CI acceptance rows).
    pub sampled: Vec<SampleComparison>,
}

/// Runs the exact suite (timed) plus sampled comparisons for the given
/// workloads, producing the [`SimspeedReport`] artifact.
pub fn simspeed(
    scale: Scale,
    seed: u64,
    cfg: MachineConfig,
    detail: u64,
    skip: u64,
    sampled_workloads: &[&str],
) -> SimspeedReport {
    let results = crate::run_suite(scale, seed, cfg);
    let benchmarks = results
        .iter()
        .map(|r| {
            let ms = r
                .per_model
                .iter()
                .map(|s| s.host_wall_ns as f64 / 1e6)
                .sum();
            let committed = r.per_model.iter().map(|s| s.total_committed()).sum();
            let cycles = r.per_model.iter().map(|s| s.cycles).sum();
            (r.name.to_string(), ms, committed, cycles)
        })
        .collect::<Vec<_>>();
    let committed: u64 = benchmarks.iter().map(|b| b.2).sum();
    let wall_ns: f64 = benchmarks.iter().map(|b| b.1 * 1e6).sum();
    let suite_msips = if wall_ns > 0.0 {
        committed as f64 * 1e3 / wall_ns
    } else {
        0.0
    };
    let sampled = sampled_workloads
        .iter()
        .map(|name| compare_sampled(name, scale, seed, Model::HiDisc, cfg, detail, skip))
        .collect();
    SimspeedReport {
        scale,
        seed,
        benchmarks,
        suite_msips,
        sample: (detail, skip),
        sampled,
    }
}

/// A float as a JSON value: JSON has no `inf`/`NaN`, so non-finite
/// values (a single-window run has an unbounded confidence band) render
/// as `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

impl SimspeedReport {
    /// The machine-readable JSON document (`BENCH_simspeed.json`). Flat,
    /// hand-rendered — the repo takes no serialisation dependency.
    pub fn render_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"scale\": \"{:?}\",", self.scale);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"suite_msips\": {:.3},", self.suite_msips);
        let _ = writeln!(out, "  \"benchmarks\": [");
        for (i, (name, ms, committed, cycles)) in self.benchmarks.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"name\": \"{name}\", \"ms\": {ms:.3}, \
                 \"committed\": {committed}, \"cycles\": {cycles}}}{}",
                if i + 1 < self.benchmarks.len() {
                    ","
                } else {
                    ""
                }
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(
            out,
            "  \"sample\": {{\"detail\": {}, \"skip\": {}, \"error_budget\": {}}},",
            self.sample.0, self.sample.1, SAMPLE_ERROR_BUDGET
        );
        let _ = writeln!(out, "  \"sampled\": [");
        for (i, c) in self.sampled.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"model\": \"{}\", \"exact_cycles\": {}, \
                 \"est_cycles\": {}, \"rel_error\": {:.6}, \"rel_error_band\": {}, \
                 \"windows\": {}, \"exact_ms\": {:.3}, \"sampled_ms\": {:.3}, \
                 \"speedup\": {:.3}, \"within_band\": {}}}{}",
                c.name,
                c.model,
                c.exact_cycles,
                c.est_cycles,
                c.rel_error(),
                json_f64(c.rel_error_band),
                c.windows,
                c.exact_ms,
                c.sampled_ms,
                c.speedup(),
                c.within_band(),
                if i + 1 < self.sampled.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ]");
        out.push_str("}\n");
        out
    }

    /// True when every sampled comparison landed inside its band.
    pub fn passed(&self) -> bool {
        self.sampled.iter().all(|c| c.within_band())
    }
}

impl Report for SimspeedReport {
    fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = format!(
            "Simulator speed (scale {:?}, seed {}): {:.2} MSIPS aggregate\n\
             benchmark          ms   committed      cycles\n",
            self.scale, self.seed, self.suite_msips
        );
        for (name, ms, committed, cycles) in &self.benchmarks {
            let _ = writeln!(out, "{name:<13} {ms:>7.1} {committed:>11} {cycles:>11}");
        }
        let _ = writeln!(
            out,
            "\nsampled mode ({}:{} detail:skip):",
            self.sample.0, self.sample.1
        );
        for c in &self.sampled {
            let _ = writeln!(
                out,
                "{:<13} {:<12} est {} vs exact {} ({:+.2}%, band {:.2}%) — {:.2}x faster",
                c.name,
                format!("{}", c.model),
                c.est_cycles,
                c.exact_cycles,
                100.0 * c.rel_error(),
                100.0 * c.rel_error_band,
                c.speedup()
            );
        }
        out
    }

    fn render_csv(&self) -> String {
        let mut out = String::from("benchmark,ms,committed,cycles\n");
        for (name, ms, committed, cycles) in &self.benchmarks {
            out.push_str(&format!("{name},{ms:.3},{committed},{cycles}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_run_estimates_cycles_and_preserves_results() {
        // `field` has stable per-window CPI, so even the small Test scale
        // yields several windows and an estimate inside the reported band.
        let c = compare_sampled(
            "field",
            Scale::Test,
            7,
            Model::HiDisc,
            MachineConfig::paper(),
            500,
            2000,
        );
        assert!(
            c.windows >= 5,
            "expected several windows, got {}",
            c.windows
        );
        assert!(c.rel_error_band.is_finite());
        assert!(
            c.within_band(),
            "estimate off by {:.1}% (band {:.1}%)",
            100.0 * c.rel_error(),
            100.0 * c.rel_error_band
        );
        // compare_sampled itself asserts the memory checksum and committed
        // counts match the exact run.
    }

    #[test]
    fn sampled_band_is_honest_on_phased_workloads() {
        // `pointer` has strongly phased CPI: few windows, each seeing a
        // different phase. The point estimate is allowed to be far off —
        // but the reported confidence band must cover the truth.
        let c = compare_sampled(
            "pointer",
            Scale::Test,
            7,
            Model::HiDisc,
            MachineConfig::paper(),
            200,
            1000,
        );
        assert!(
            c.windows >= 2,
            "expected several windows, got {}",
            c.windows
        );
        assert!(
            c.rel_error().abs() <= c.rel_error_band,
            "estimate off by {:.1}% but band is only {:.1}%",
            100.0 * c.rel_error(),
            100.0 * c.rel_error_band
        );
    }

    #[test]
    fn sampled_suite_agrees_across_models() {
        // The cross-model memory check inside run_suite_sampled is the
        // assertion; a panic here means sampling corrupted execution.
        let results = run_suite_sampled(Scale::Test, 3, MachineConfig::paper(), 500, 2000);
        assert_eq!(results.len(), 7);
        for r in &results {
            for s in &r.per_model {
                assert!(s.cycles > 0, "{}: zero estimated cycles", r.name);
            }
        }
    }

    #[test]
    fn bisect_finds_reproducible_divergence() {
        let a = MachineConfig::paper_with_latency(4, 40);
        let b = MachineConfig::paper_with_latency(16, 160);
        let r1 = bisect("pointer", Scale::Test, 7, Model::HiDisc, a, b);
        let c1 = r1
            .first_divergence
            .expect("a 4x latency change must diverge");
        assert!(c1 <= r1.end_a.min(r1.end_b));
        // Deterministic: a second search lands on the same cycle.
        let r2 = bisect("pointer", Scale::Test, 7, Model::HiDisc, a, b);
        assert_eq!(r2.first_divergence, Some(c1));
        assert!(!BisectReport(r1).render_text().is_empty());
    }

    #[test]
    fn bisect_of_identical_configs_reports_no_divergence() {
        let cfg = MachineConfig::paper();
        let r = bisect("update", Scale::Test, 3, Model::Superscalar, cfg, cfg);
        assert_eq!(r.first_divergence, None);
        assert_eq!(r.end_a, r.end_b);
        assert!(BisectReport(r).render_csv().ends_with(",,1\n"));
    }

    #[test]
    fn simspeed_json_is_well_formed() {
        let rep = simspeed(
            Scale::Test,
            3,
            MachineConfig::paper(),
            500,
            2000,
            &["pointer"],
        );
        let json = rep.render_json();
        assert!(json.contains("\"suite_msips\""));
        assert!(json.contains("\"sampled\": ["));
        assert!(json.contains("\"name\": \"pointer\""));
        // Balanced braces/brackets (the document is hand-rendered), and
        // no non-finite literals (JSON has none; a one-window run's
        // unbounded band must render as null).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains("inf") && !json.contains("NaN"), "{json}");
        assert_eq!(rep.benchmarks.len(), 7);
    }
}
