//! A small self-scheduling work pool for the experiment grids.
//!
//! The paper-reproduction sweeps (fig8/fig9/fig10/ablate) are
//! embarrassingly parallel: a flat grid of (benchmark × model ×
//! config-point) cells, each a completely independent simulation. This
//! module runs such grids on scoped worker threads that pull cell indices
//! from a shared atomic counter, so long-running cells never leave idle
//! cores behind a static partition.
//!
//! The pool size is a process-wide setting (see [`set_threads`]) so the
//! `repro --threads N` flag caps every sweep in the invocation.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// 0 = "use all host cores" (the default until [`set_threads`] is called).
static THREAD_CAP: AtomicUsize = AtomicUsize::new(0);

/// Caps the number of worker threads used by every subsequent grid run.
/// `0` restores the default of one worker per host core.
pub fn set_threads(n: usize) {
    THREAD_CAP.store(n, Ordering::Relaxed);
}

/// The number of workers a grid run will use right now.
pub fn threads() -> usize {
    match THREAD_CAP.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Runs `job(i)` for every `i in 0..n` across the worker pool and returns
/// the results in index order. Panics in jobs propagate to the caller
/// (after the remaining workers drain). With one worker (or one cell) the
/// jobs run inline on the calling thread.
pub fn run_indexed<T, F>(n: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads().min(n);
    if workers <= 1 {
        return (0..n).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = job(i);
                done.lock().expect("pool results lock").push((i, r));
            });
        }
    });
    let mut v = done.into_inner().expect("pool results lock");
    debug_assert_eq!(v.len(), n);
    v.sort_unstable_by_key(|(i, _)| *i);
    v.into_iter().map(|(_, r)| r).collect()
}

/// A submitted unit of work.
type Job = Box<dyn FnOnce() + Send>;

struct WorkQueue {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Shared {
    q: Mutex<WorkQueue>,
    cv: Condvar,
    depth: usize,
    queued: AtomicUsize,
    running: AtomicUsize,
}

/// Error returned by [`Workers::try_submit`] when the bounded queue is
/// full (backpressure) or the pool is shutting down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue holds `queue_depth` jobs already; retry later.
    Full,
    /// [`Workers::shutdown`] was called; no new work is accepted.
    Closed,
}

/// A long-lived bounded-queue worker pool, the service-side counterpart
/// of the fork-join [`run_indexed`] grid runner: jobs are submitted one
/// at a time, the queue is bounded (callers see [`SubmitError::Full`]
/// instead of unbounded buffering), and shutdown lets in-flight jobs
/// finish.
pub struct Workers {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Workers {
    /// Spawns `workers` threads (at least 1) servicing a queue of at
    /// most `queue_depth` pending jobs (at least 1).
    pub fn new(workers: usize, queue_depth: usize) -> Workers {
        let shared = Arc::new(Shared {
            q: Mutex::new(WorkQueue {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            depth: queue_depth.max(1),
            queued: AtomicUsize::new(0),
            running: AtomicUsize::new(0),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let sh = Arc::clone(&shared);
                // Named threads so worker activity is attributable in
                // thread dumps, `top -H` and panic messages.
                std::thread::Builder::new()
                    .name(format!("hidisc-worker-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let mut q = sh.q.lock().expect("worker queue lock");
                            loop {
                                if let Some(j) = q.jobs.pop_front() {
                                    break j;
                                }
                                if q.closed {
                                    return;
                                }
                                q = sh.cv.wait(q).expect("worker queue lock");
                            }
                        };
                        sh.queued.fetch_sub(1, Ordering::Relaxed);
                        sh.running.fetch_add(1, Ordering::Relaxed);
                        job();
                        sh.running.fetch_sub(1, Ordering::Relaxed);
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Workers { shared, handles }
    }

    /// Enqueues `job` unless the queue is at capacity or the pool is
    /// closed.
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let mut q = self.shared.q.lock().expect("worker queue lock");
        if q.closed {
            return Err(SubmitError::Closed);
        }
        if q.jobs.len() >= self.shared.depth {
            return Err(SubmitError::Full);
        }
        q.jobs.push_back(Box::new(job));
        self.shared.queued.fetch_add(1, Ordering::Relaxed);
        drop(q);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Jobs waiting in the queue.
    pub fn queued(&self) -> usize {
        self.shared.queued.load(Ordering::Relaxed)
    }

    /// Jobs currently executing.
    pub fn running(&self) -> usize {
        self.shared.running.load(Ordering::Relaxed)
    }

    /// Closes the pool and joins every worker. In-flight jobs always
    /// finish; jobs still queued run too when `drain` is true and are
    /// discarded otherwise (the caller is responsible for failing any
    /// state tracked against them).
    pub fn shutdown(mut self, drain: bool) {
        {
            let mut q = self.shared.q.lock().expect("worker queue lock");
            q.closed = true;
            if !drain {
                let dropped = q.jobs.len();
                q.jobs.clear();
                self.shared.queued.fetch_sub(dropped, Ordering::Relaxed);
            }
        }
        self.shared.cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Workers {
    fn drop(&mut self) {
        let mut q = self.shared.q.lock().expect("worker queue lock");
        q.closed = true;
        q.jobs.clear();
        drop(q);
        self.shared.cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test (not several) because the cap is process-global and the
    /// test harness runs tests concurrently.
    #[test]
    fn pool_schedules_and_orders_correctly() {
        set_threads(3);
        assert_eq!(threads(), 3);

        set_threads(4);
        let out = run_indexed(64, |i| {
            // Stagger so completion order differs from index order.
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            i * 3
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());

        set_threads(1);
        assert_eq!(run_indexed(10, |i| i + 1), (1..=10).collect::<Vec<_>>());
        assert!(run_indexed(0, |i| i).is_empty());

        set_threads(0);
        assert!(threads() >= 1);
    }

    #[test]
    fn workers_run_jobs_and_bound_the_queue() {
        use std::sync::atomic::AtomicU64;
        use std::sync::mpsc;

        let pool = Workers::new(1, 2);
        let ran = Arc::new(AtomicU64::new(0));

        // Block the single worker so subsequent submissions queue up.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_submit(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv().unwrap();

        for _ in 0..2 {
            let ran = Arc::clone(&ran);
            pool.try_submit(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        let ran2 = Arc::clone(&ran);
        assert_eq!(
            pool.try_submit(move || {
                ran2.fetch_add(1, Ordering::Relaxed);
            }),
            Err(SubmitError::Full)
        );
        assert_eq!(pool.queued(), 2);

        release_tx.send(()).unwrap();
        pool.shutdown(true);
        assert_eq!(ran.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn workers_shutdown_discards_queued_without_drain() {
        use std::sync::atomic::AtomicU64;
        use std::sync::mpsc;

        let pool = Workers::new(1, 4);
        let ran = Arc::new(AtomicU64::new(0));
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        {
            let ran = Arc::clone(&ran);
            pool.try_submit(move || {
                started_tx.send(()).unwrap();
                release_rx.recv().unwrap();
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        started_rx.recv().unwrap();
        for _ in 0..3 {
            let ran = Arc::clone(&ran);
            pool.try_submit(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        // Shut down while the in-flight job still blocks the only worker:
        // the queue is cleared before the worker can ever take another
        // job. Release the worker only once the clear is observable, so
        // the three queued jobs are deterministically dropped.
        let shared = Arc::clone(&pool.shared);
        let shut = std::thread::spawn(move || pool.shutdown(false));
        while shared.queued.load(Ordering::Relaxed) != 0 {
            std::thread::yield_now();
        }
        release_tx.send(()).unwrap();
        shut.join().unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }
}
