//! A small self-scheduling work pool for the experiment grids.
//!
//! The paper-reproduction sweeps (fig8/fig9/fig10/ablate) are
//! embarrassingly parallel: a flat grid of (benchmark × model ×
//! config-point) cells, each a completely independent simulation. This
//! module runs such grids on scoped worker threads that pull cell indices
//! from a shared atomic counter, so long-running cells never leave idle
//! cores behind a static partition.
//!
//! The pool size is a process-wide setting (see [`set_threads`]) so the
//! `repro --threads N` flag caps every sweep in the invocation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// 0 = "use all host cores" (the default until [`set_threads`] is called).
static THREAD_CAP: AtomicUsize = AtomicUsize::new(0);

/// Caps the number of worker threads used by every subsequent grid run.
/// `0` restores the default of one worker per host core.
pub fn set_threads(n: usize) {
    THREAD_CAP.store(n, Ordering::Relaxed);
}

/// The number of workers a grid run will use right now.
pub fn threads() -> usize {
    match THREAD_CAP.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Runs `job(i)` for every `i in 0..n` across the worker pool and returns
/// the results in index order. Panics in jobs propagate to the caller
/// (after the remaining workers drain). With one worker (or one cell) the
/// jobs run inline on the calling thread.
pub fn run_indexed<T, F>(n: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads().min(n);
    if workers <= 1 {
        return (0..n).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = job(i);
                done.lock().expect("pool results lock").push((i, r));
            });
        }
    });
    let mut v = done.into_inner().expect("pool results lock");
    debug_assert_eq!(v.len(), n);
    v.sort_unstable_by_key(|(i, _)| *i);
    v.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test (not several) because the cap is process-global and the
    /// test harness runs tests concurrently.
    #[test]
    fn pool_schedules_and_orders_correctly() {
        set_threads(3);
        assert_eq!(threads(), 3);

        set_threads(4);
        let out = run_indexed(64, |i| {
            // Stagger so completion order differs from index order.
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            i * 3
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());

        set_threads(1);
        assert_eq!(run_indexed(10, |i| i + 1), (1..=10).collect::<Vec<_>>());
        assert!(run_indexed(0, |i| i).is_empty());

        set_threads(0);
        assert!(threads() >= 1);
    }
}
