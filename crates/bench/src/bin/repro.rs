//! `repro` — regenerates every table and figure of the HiDISC paper.
//!
//! ```text
//! repro [params|fig8|table2|fig9|fig10|ablate|all]
//!       [--scale test|paper|large] [--seed N] [--threads N]
//! ```

use hidisc::MachineConfig;
use hidisc_bench as bench;
use hidisc_workloads::Scale;

struct Args {
    cmd: String,
    arg: Option<String>,
    scale: Scale,
    seed: u64,
}

fn parse_args() -> Args {
    let mut cmd = "all".to_string();
    let mut arg: Option<String> = None;
    let mut scale = Scale::Paper;
    let mut seed = 2003; // the paper's publication year
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_default();
                scale = match v.as_str() {
                    "test" => Scale::Test,
                    "paper" => Scale::Paper,
                    "large" => Scale::Large,
                    other => {
                        eprintln!("unknown scale `{other}` (use test|paper|large)");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                seed = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs a number");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                // 0 = one worker per host core (the default).
                let n: usize =
                    it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--threads needs a number (0 = all host cores)");
                        std::process::exit(2);
                    });
                bench::pool::set_threads(n);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [{}] \
                     [report|diag|trace <workload>] \
                     [--scale test|paper|large] [--seed N] [--threads N]",
                    COMMANDS.join("|")
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}` (see --help)");
                std::process::exit(2);
            }
            other => {
                if cmd == "all" {
                    cmd = other.to_string();
                } else if arg.is_none() {
                    arg = Some(other.to_string());
                } else {
                    eprintln!("unexpected argument `{other}` (see --help)");
                    std::process::exit(2);
                }
            }
        }
    }
    if !COMMANDS.contains(&cmd.as_str()) {
        eprintln!("unknown command `{}` (use {})", cmd, COMMANDS.join("|"));
        std::process::exit(2);
    }
    if arg.is_some() && !matches!(cmd.as_str(), "trace" | "report" | "diag") {
        eprintln!("command `{cmd}` takes no argument (see --help)");
        std::process::exit(2);
    }
    Args { cmd, arg, scale, seed }
}

/// Every subcommand, in help order.
const COMMANDS: [&str; 14] = [
    "params", "fig8", "table2", "fig9", "fig10", "csv", "trace", "report", "diag", "micro",
    "extras", "related", "ablate", "all",
];

fn main() {
    let args = parse_args();
    let cfg = MachineConfig::paper();

    let need_suite = matches!(args.cmd.as_str(), "fig8" | "table2" | "fig9" | "all" | "csv");
    let results = if need_suite {
        eprintln!(
            "running the 7-benchmark suite on 4 machine models (scale {:?}, seed {})...",
            args.scale, args.seed
        );
        let results = bench::run_suite(args.scale, args.seed, cfg);
        eprintln!("{}", bench::msips_line(&results));
        Some(results)
    } else {
        None
    };

    match args.cmd.as_str() {
        "params" => print!("{}", bench::table1(&cfg)),
        "fig8" => print!("{}", bench::render_fig8(&bench::fig8(results.as_ref().unwrap()))),
        "table2" => {
            print!("{}", bench::render_table2(&bench::table2(results.as_ref().unwrap())))
        }
        "fig9" => print!("{}", bench::render_fig9(&bench::fig9(results.as_ref().unwrap()))),
        "csv" => {
            let results = results.as_ref().unwrap();
            print!("{}", bench::fig8_csv(&bench::fig8(results)));
            println!();
            print!("{}", bench::fig9_csv(&bench::fig9(results)));
            println!();
            let series = bench::fig10(&["pointer", "neighborhood"], args.scale, args.seed);
            print!("{}", bench::fig10_csv(&series));
        }
        "fig10" => {
            eprintln!("running the Figure-10 latency sweep (pointer, neighborhood)...");
            let series = bench::fig10(&["pointer", "neighborhood"], args.scale, args.seed);
            print!("{}", bench::render_fig10(&series));
        }
        "trace" => {
            let name = args.arg.as_deref().unwrap_or("update");
            print!("{}", bench::pipeline_trace(name, Scale::Test, args.seed, 60));
        }
        "report" => {
            let name = args.arg.as_deref().unwrap_or("update");
            print!("{}", bench::separation_report(name, args.scale, args.seed));
        }
        "diag" => {
            let name = args.arg.as_deref().unwrap_or("update");
            print!("{}", bench::diagnostics(name, args.scale, args.seed));
        }
        "micro" => {
            eprintln!("running the micro-kernels (lll1, convolution, saxpy, sdot) on 4 models...");
            for w in hidisc_workloads::micro::micro_suite(args.scale, args.seed) {
                let r = bench::run_workload(&w, cfg);
                print!("{:<13}", r.name);
                for st in &r.per_model {
                    print!(" {}={:.3}", st.model, st.speedup_over(r.baseline()));
                }
                println!();
            }
        }
        "extras" => {
            eprintln!("running the extra Stressmarks (cornerturn, matrix) on 4 models...");
            for w in hidisc_workloads::extras(args.scale, args.seed) {
                let r = bench::run_workload(&w, cfg);
                print!("{:<13}", r.name);
                for st in &r.per_model {
                    print!(" {}={:.3}", st.model, st.speedup_over(r.baseline()));
                }
                println!();
            }
        }
        "related" => {
            eprintln!("running the related-work comparison (all 7 benchmarks)...");
            let rows = bench::related_work(
                &["dm", "raytrace", "pointer", "update", "field", "neighborhood", "tc"],
                args.scale,
                args.seed,
            );
            print!("{}", bench::render_related(&rows));
        }
        "ablate" => {
            eprintln!("running the ablation study (update, tc, neighborhood, dm)...");
            let rows = bench::ablate(&["update", "tc", "neighborhood", "dm"], args.scale, args.seed);
            print!("{}", bench::render_ablation(&rows));
        }
        "all" => {
            let results = results.as_ref().unwrap();
            println!("Table 1: simulation parameters\n{}", bench::table1(&cfg));
            println!("{}", bench::render_fig8(&bench::fig8(results)));
            println!("{}", bench::render_table2(&bench::table2(results)));
            println!("{}", bench::render_fig9(&bench::fig9(results)));
            eprintln!("running the Figure-10 latency sweep (pointer, neighborhood)...");
            let series = bench::fig10(&["pointer", "neighborhood"], args.scale, args.seed);
            println!("{}", bench::render_fig10(&series));
        }
        other => unreachable!("command `{other}` was validated in parse_args"),
    }
}
