//! # hidisc-bench — the paper-reproduction harness
//!
//! Runs the experiments of the HiDISC paper's evaluation section and
//! regenerates every table and figure:
//!
//! * **Figure 8** — speed-up of CP+AP, CP+CMP and HiDISC over the baseline
//!   superscalar, per benchmark ([`fig8`]);
//! * **Table 2** — average speed-up of the three models ([`table2`]);
//! * **Figure 9** — relative L1 demand miss rate per benchmark
//!   ([`fig9`]);
//! * **Figure 10** — IPC under the L2/memory latency sweep
//!   {4/40, 8/80, 12/120, 16/160} for Pointer and Neighborhood
//!   ([`fig10`]);
//! * **Table 1** — the simulation parameters ([`table1`]).
//!
//! Runs are deterministic for a given seed. The `repro` binary prints the
//! results as aligned text tables.

use hidisc::{run_model, MachineConfig, MachineStats, Model};
use hidisc_slicer::{compile, CompiledWorkload, CompilerConfig, ExecEnv};
use hidisc_workloads::{suite, Scale, Workload};
use std::sync::Arc;

pub mod pool;

/// All four models of one benchmark under one machine configuration.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Statistics per model, in [`Model::ALL`] order.
    pub per_model: Vec<MachineStats>,
}

impl SuiteResult {
    /// The baseline (superscalar) run.
    pub fn baseline(&self) -> &MachineStats {
        &self.per_model[0]
    }

    /// Statistics of one model.
    pub fn of(&self, m: Model) -> &MachineStats {
        self.per_model.iter().find(|s| s.model == m).expect("all models present")
    }
}

/// Execution environment of a workload.
pub fn env_of(w: &Workload) -> ExecEnv {
    ExecEnv { regs: w.regs.clone(), mem: w.mem.clone(), max_steps: w.max_steps }
}

/// A workload compiled once and shared (read-only) by every grid cell
/// that simulates it, so latency sweeps and model grids never recompile.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Benchmark name.
    pub name: &'static str,
    /// Execution environment (initial registers/memory).
    pub env: ExecEnv,
    /// The compiled program, shared across worker threads.
    pub compiled: Arc<CompiledWorkload>,
}

/// Compiles one workload for grid running.
pub fn prepare(w: &Workload) -> Prepared {
    let env = env_of(w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default())
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
    Prepared { name: w.name, env, compiled: Arc::new(compiled) }
}

/// Runs every model of one prepared workload under `cfg`, cross-checking
/// that all models compute the same final memory.
fn run_prepared(p: &Prepared, cfg: MachineConfig) -> SuiteResult {
    let per_model: Vec<MachineStats> = Model::ALL
        .into_iter()
        .map(|m| {
            run_model(m, &p.compiled, &p.env, cfg)
                .unwrap_or_else(|e| panic!("{} on {m}: {e}", p.name))
        })
        .collect();
    check_models_agree(p.name, &per_model);
    SuiteResult { name: p.name, per_model }
}

/// Cross-model safety net: every model must compute the same final memory.
fn check_models_agree(name: &str, per_model: &[MachineStats]) {
    for s in &per_model[1..] {
        assert_eq!(
            s.mem_checksum, per_model[0].mem_checksum,
            "{}: {} diverged from baseline memory",
            name, s.model
        );
    }
}

/// Compiles and runs one workload on every model.
pub fn run_workload(w: &Workload, cfg: MachineConfig) -> SuiteResult {
    run_prepared(&prepare(w), cfg)
}

/// Runs the full seven-benchmark suite on the worker pool: compilation is
/// parallel over benchmarks, then the flattened (benchmark × model) grid
/// is parallel over all cells.
pub fn run_suite(scale: Scale, seed: u64, cfg: MachineConfig) -> Vec<SuiteResult> {
    let workloads = suite(scale, seed);
    let prepared = pool::run_indexed(workloads.len(), |i| prepare(&workloads[i]));
    let nm = Model::ALL.len();
    let stats = pool::run_indexed(prepared.len() * nm, |k| {
        let p = &prepared[k / nm];
        let m = Model::ALL[k % nm];
        run_model(m, &p.compiled, &p.env, cfg).unwrap_or_else(|e| panic!("{} on {m}: {e}", p.name))
    });
    prepared
        .iter()
        .zip(stats.chunks(nm))
        .map(|(p, per_model)| {
            check_models_agree(p.name, per_model);
            SuiteResult { name: p.name, per_model: per_model.to_vec() }
        })
        .collect()
}

/// Simulator-performance summary of a set of runs: committed instructions,
/// host wall time (summed across runs — with a worker pool the wall clock
/// of the whole sweep is shorter), aggregate MSIPS, and how much of the
/// simulated time the idle-cycle fast-forward skipped.
pub fn msips_line(results: &[SuiteResult]) -> String {
    let all = || results.iter().flat_map(|r| r.per_model.iter());
    let committed: u64 = all().map(|s| s.total_committed()).sum();
    let wall_ns: u64 = all().map(|s| s.host_wall_ns).sum();
    let cycles: u64 = all().map(|s| s.cycles).sum();
    let skipped: u64 = all().map(|s| s.ff_skipped_cycles).sum();
    let jumps: u64 = all().map(|s| s.ff_jumps).sum();
    let msips = if wall_ns == 0 { 0.0 } else { committed as f64 * 1e3 / wall_ns as f64 };
    let pct = if cycles == 0 { 0.0 } else { 100.0 * skipped as f64 / cycles as f64 };
    format!(
        "sim speed: {committed} instrs in {:.3} s CPU = {msips:.2} MSIPS \
         (fast-forward skipped {pct:.1}% of {cycles} cycles in {jumps} jumps)",
        wall_ns as f64 / 1e9
    )
}

/// One Figure-8 row: speed-up over the baseline per model.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    pub name: &'static str,
    /// Speed-ups in [`Model::ALL`] order (baseline is 1.0 by definition).
    pub speedup: [f64; 4],
}

/// Figure 8: per-benchmark speed-up over the baseline superscalar.
pub fn fig8(results: &[SuiteResult]) -> Vec<Fig8Row> {
    results
        .iter()
        .map(|r| {
            let base = r.baseline();
            let mut speedup = [0.0; 4];
            for (i, s) in r.per_model.iter().enumerate() {
                speedup[i] = s.speedup_over(base);
            }
            Fig8Row { name: r.name, speedup }
        })
        .collect()
}

/// Table 2: average speed-up of the three non-baseline models (arithmetic
/// mean of per-benchmark speed-ups, as the paper reports).
pub fn table2(results: &[SuiteResult]) -> [f64; 4] {
    let rows = fig8(results);
    let mut avg = [0.0; 4];
    for row in &rows {
        for (a, s) in avg.iter_mut().zip(row.speedup) {
            *a += s;
        }
    }
    for a in &mut avg {
        *a /= rows.len() as f64;
    }
    avg
}

/// One Figure-9 row: L1 demand miss rate relative to the baseline.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    pub name: &'static str,
    /// `miss_rate(model) / miss_rate(baseline)` in [`Model::ALL`] order.
    pub ratio: [f64; 4],
    /// Absolute baseline miss rate (context for the table).
    pub base_miss_rate: f64,
}

/// Figure 9: relative cache miss rate per benchmark.
pub fn fig9(results: &[SuiteResult]) -> Vec<Fig9Row> {
    results
        .iter()
        .map(|r| {
            let base = r.baseline();
            let mut ratio = [0.0; 4];
            for (i, s) in r.per_model.iter().enumerate() {
                ratio[i] = s.miss_rate_ratio(base);
            }
            Fig9Row { name: r.name, ratio, base_miss_rate: base.l1_miss_rate() }
        })
        .collect()
}

/// The Figure-10 latency sweep points `(l2_latency, memory_latency)`.
pub const FIG10_LATENCIES: [(u32, u32); 4] = [(4, 40), (8, 80), (12, 120), (16, 160)];

/// One Figure-10 series: IPC of each model across the latency sweep.
#[derive(Debug, Clone)]
pub struct Fig10Series {
    pub name: &'static str,
    /// `ipc[lat][model]` with latencies in [`FIG10_LATENCIES`] order and
    /// models in [`Model::ALL`] order.
    pub ipc: Vec<[f64; 4]>,
}

/// Figure 10: latency tolerance for the given benchmarks (the paper uses
/// Pointer and Neighborhood).
pub fn fig10(names: &[&str], scale: Scale, seed: u64) -> Vec<Fig10Series> {
    let prepared = pool::run_indexed(names.len(), |i| {
        let w = hidisc_workloads::by_name(names[i], scale, seed)
            .unwrap_or_else(|| panic!("unknown workload {}", names[i]));
        prepare(&w)
    });
    // One flat grid over (benchmark × latency point × model): each cell is
    // an independent simulation sharing the Arc'd compiled program.
    let nl = FIG10_LATENCIES.len();
    let nm = Model::ALL.len();
    let stats = pool::run_indexed(prepared.len() * nl * nm, |k| {
        let p = &prepared[k / (nl * nm)];
        let (l2, mem) = FIG10_LATENCIES[(k / nm) % nl];
        let m = Model::ALL[k % nm];
        run_model(m, &p.compiled, &p.env, MachineConfig::paper_with_latency(l2, mem))
            .unwrap_or_else(|e| panic!("{} on {m} at {l2}/{mem}: {e}", p.name))
    });
    prepared
        .iter()
        .zip(stats.chunks(nl * nm))
        .map(|(p, per_point)| {
            let ipc = per_point
                .chunks(nm)
                .map(|per_model| {
                    check_models_agree(p.name, per_model);
                    let mut row = [0.0; 4];
                    for (i, st) in per_model.iter().enumerate() {
                        row[i] = st.ipc();
                    }
                    row
                })
                .collect();
            Fig10Series { name: p.name, ipc }
        })
        .collect()
}

/// Table 1: the simulation parameters, rendered as the paper presents
/// them.
pub fn table1(cfg: &MachineConfig) -> String {
    let s = &cfg.superscalar;
    format!(
        "Branch predict mode          Bimodal\n\
         Branch table size            {}\n\
         Issue/commit width           {}\n\
         Instruction window           Superscalar {} / AP {} / CP {}\n\
         Integer functional units     ALU x{}, MUL/DIV x{}\n\
         FP functional units          ALU x{}, MUL/DIV x{} (superscalar and CP)\n\
         Memory ports                 {} per memory-capable processor\n\
         L1 data cache                {} sets, {}B blocks, {}-way, LRU\n\
         L1 latency                   {} cycle(s)\n\
         Unified L2                   {} sets, {}B blocks, {}-way, LRU\n\
         L2 latency                   {} cycles\n\
         Memory latency               {} cycles\n\
         Queues (LDQ/SDQ/CDQ/CQ/SCQ)  {}/{}/{}/{}/{} entries\n",
        s.predictor_entries,
        s.issue_width,
        s.ruu_size,
        cfg.ap.ruu_size,
        cfg.cp.ruu_size,
        s.int_alu,
        s.int_mul,
        s.fp_alu,
        s.fp_mul,
        s.mem_ports,
        cfg.mem.l1.sets,
        cfg.mem.l1.block_bytes,
        cfg.mem.l1.ways,
        cfg.mem.l1.latency,
        cfg.mem.l2.sets,
        cfg.mem.l2.block_bytes,
        cfg.mem.l2.ways,
        cfg.mem.l2.latency,
        cfg.mem.mem_latency,
        cfg.queues.ldq,
        cfg.queues.sdq,
        cfg.queues.cdq,
        cfg.queues.cq,
        cfg.queues.scq,
    )
}

/// Renders Figure 8 as an aligned text table.
pub fn render_fig8(rows: &[Fig8Row]) -> String {
    let mut out = String::from(
        "Figure 8: speed-up over the baseline superscalar\n\
         benchmark     Superscalar   CP+AP    CP+CMP   HiDISC\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<13} {:>10.3} {:>8.3} {:>8.3} {:>8.3}\n",
            r.name, r.speedup[0], r.speedup[1], r.speedup[2], r.speedup[3]
        ));
    }
    out
}

/// Renders Table 2.
pub fn render_table2(avg: &[f64; 4]) -> String {
    format!(
        "Table 2: average speed-up over the baseline\n\
         CP+AP   (access/execute decoupling): {:+.1}%\n\
         CP+CMP  (cache prefetching):         {:+.1}%\n\
         HiDISC  (decoupling + prefetching):  {:+.1}%\n",
        (avg[1] - 1.0) * 100.0,
        (avg[2] - 1.0) * 100.0,
        (avg[3] - 1.0) * 100.0
    )
}

/// Renders Figure 9.
pub fn render_fig9(rows: &[Fig9Row]) -> String {
    let mut out = String::from(
        "Figure 9: L1 demand miss rate relative to the baseline (1.0 = baseline)\n\
         benchmark     base-rate   CP+AP    CP+CMP   HiDISC\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<13} {:>9.4} {:>8.3} {:>8.3} {:>8.3}\n",
            r.name, r.base_miss_rate, r.ratio[1], r.ratio[2], r.ratio[3]
        ));
    }
    out
}

/// Renders Figure 10.
pub fn render_fig10(series: &[Fig10Series]) -> String {
    let mut out = String::from("Figure 10: IPC under the L2/memory latency sweep\n");
    for s in series {
        out.push_str(&format!(
            "\n{} — IPC\nL2/mem      Superscalar   CP+AP    CP+CMP   HiDISC\n",
            s.name
        ));
        for (li, (l2, mem)) in FIG10_LATENCIES.into_iter().enumerate() {
            let r = s.ipc[li];
            out.push_str(&format!(
                "{:>2}/{:<6} {:>11.3} {:>8.3} {:>8.3} {:>8.3}\n",
                l2, mem, r[0], r[1], r[2], r[3]
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_runs_and_tables_render() {
        let results = run_suite(Scale::Test, 3, MachineConfig::paper());
        assert_eq!(results.len(), 7);
        let f8 = fig8(&results);
        assert!(f8.iter().all(|r| (r.speedup[0] - 1.0).abs() < 1e-12));
        let t2 = table2(&results);
        assert!((t2[0] - 1.0).abs() < 1e-12);
        let f9 = fig9(&results);
        assert_eq!(f9.len(), 7);
        assert!(!render_fig8(&f8).is_empty());
        assert!(!render_table2(&t2).is_empty());
        assert!(!render_fig9(&f9).is_empty());
        assert!(table1(&MachineConfig::paper()).contains("Bimodal"));
    }

    #[test]
    fn fig10_shapes() {
        let series = fig10(&["pointer"], Scale::Test, 3);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].ipc.len(), 4);
        assert!(!render_fig10(&series).is_empty());
        // IPC should not increase as latency grows, for any model.
        for m in 0..4 {
            assert!(
                series[0].ipc[0][m] >= series[0].ipc[3][m] * 0.98,
                "model {m}: IPC grew with latency"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// One ablation variant of the HiDISC machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Ablation {
    /// The full default HiDISC.
    Full,
    /// Compiler does not extract CMAS threads (pure access/execute
    /// decoupling — should collapse onto CP+AP).
    NoCmas,
    /// CMP with the next-line assist on its own load misses (extension).
    NextLineAssist,
    /// Slip Control Queue depth override (prefetch run-ahead distance).
    ScqDepth(usize),
    /// A single-issue, single-ported CMP (weakest engine).
    WeakCmp,
    /// The paper's future-work extensions: adaptive prefetch distance and
    /// selective triggering.
    Dynamic,
}

impl Ablation {
    /// All variants evaluated by `repro ablate`.
    pub fn all() -> Vec<Ablation> {
        vec![
            Ablation::Full,
            Ablation::NoCmas,
            Ablation::NextLineAssist,
            Ablation::ScqDepth(4),
            Ablation::ScqDepth(64),
            Ablation::WeakCmp,
            Ablation::Dynamic,
        ]
    }

    /// Human-readable label.
    pub fn label(&self) -> String {
        match self {
            Ablation::Full => "full HiDISC".into(),
            Ablation::NoCmas => "no CMAS (CP+AP only)".into(),
            Ablation::NextLineAssist => "next-line assist on".into(),
            Ablation::ScqDepth(d) => format!("SCQ depth {d}"),
            Ablation::WeakCmp => "1-wide 1-port CMP".into(),
            Ablation::Dynamic => "dynamic slip + selective triggers".into(),
        }
    }
}

/// Ablation results for one workload: HiDISC speed-up over the baseline
/// superscalar under each variant.
#[derive(Debug, Clone)]
pub struct AblationRow {
    pub name: &'static str,
    pub speedup: Vec<(Ablation, f64)>,
}

/// Runs the ablation study over the given workloads: per-workload
/// compilation and baselines in one pooled pass, then the flattened
/// (workload × variant) grid in a second.
pub fn ablate(names: &[&str], scale: Scale, seed: u64) -> Vec<AblationRow> {
    use hidisc::{DynamicConfig, Model};

    struct AblatePrep {
        name: &'static str,
        env: ExecEnv,
        compiled: Arc<CompiledWorkload>,
        no_cmas: Arc<CompiledWorkload>,
        base: MachineStats,
    }

    let prepared = pool::run_indexed(names.len(), |i| {
        let w = hidisc_workloads::by_name(names[i], scale, seed)
            .unwrap_or_else(|| panic!("unknown workload {}", names[i]));
        let env = env_of(&w);
        let compiled = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();
        let no_cmas = compile(
            &w.prog,
            &env,
            &CompilerConfig { enable_cmas: false, ..CompilerConfig::default() },
        )
        .unwrap();
        let base =
            hidisc::run_model(Model::Superscalar, &compiled, &env, MachineConfig::paper()).unwrap();
        AblatePrep {
            name: w.name,
            env,
            compiled: Arc::new(compiled),
            no_cmas: Arc::new(no_cmas),
            base,
        }
    });

    let variants = Ablation::all();
    let nv = variants.len();
    let cells = pool::run_indexed(prepared.len() * nv, |k| {
        let p = &prepared[k / nv];
        let a = variants[k % nv];
        let mut cfg = MachineConfig::paper();
        let c = match a {
            Ablation::Full => &p.compiled,
            Ablation::NoCmas => &p.no_cmas,
            Ablation::NextLineAssist => {
                cfg.cmp.next_line_assist = true;
                &p.compiled
            }
            Ablation::ScqDepth(d) => {
                cfg.queues.scq = d;
                &p.compiled
            }
            Ablation::WeakCmp => {
                cfg.cmp.issue_width = 1;
                cfg.cmp.thread_width = 1;
                cfg.cmp.mem_ports = 1;
                cfg.cmp.next_line_assist = false;
                &p.compiled
            }
            Ablation::Dynamic => {
                cfg.cmp.dynamic = DynamicConfig::all_on();
                &p.compiled
            }
        };
        let st = hidisc::run_model(Model::HiDisc, c, &p.env, cfg)
            .unwrap_or_else(|e| panic!("{} ablation {}: {e}", p.name, a.label()));
        assert_eq!(st.mem_checksum, p.base.mem_checksum, "{}: ablation diverged", p.name);
        (a, st.speedup_over(&p.base))
    });

    prepared
        .iter()
        .zip(cells.chunks(nv))
        .map(|(p, speedup)| AblationRow { name: p.name, speedup: speedup.to_vec() })
        .collect()
}

/// Renders the ablation table.
pub fn render_ablation(rows: &[AblationRow]) -> String {
    let mut out = String::from("Ablation study: HiDISC speed-up over the baseline superscalar\n");
    if let Some(first) = rows.first() {
        out.push_str(&format!("{:<34}", "variant"));
        for _ in &first.speedup {
            // header filled below per-column
        }
        let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
        for n in &names {
            out.push_str(&format!("{n:>13}"));
        }
        out.push('\n');
        for (i, (a, _)) in first.speedup.iter().enumerate() {
            out.push_str(&format!("{:<34}", a.label()));
            for r in rows {
                out.push_str(&format!("{:>13.3}", r.speedup[i].1));
            }
            out.push('\n');
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Inspection helpers behind `repro report` / `repro diag`
// ---------------------------------------------------------------------------

/// The compiler's separation report (Figures 3/5-7 walkthrough) for one
/// suite workload.
pub fn separation_report(name: &str, scale: Scale, seed: u64) -> String {
    let w = hidisc_workloads::by_name(name, scale, seed)
        .unwrap_or_else(|| panic!("unknown workload {name}"));
    let env = env_of(&w);
    let c = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();
    hidisc_slicer::report::render(&c)
}

/// Runs every model on one workload and renders the machine-level
/// diagnostics (stall breakdowns, queue traffic, CMP behaviour).
pub fn diagnostics(name: &str, scale: Scale, seed: u64) -> String {
    use std::fmt::Write;
    let w = hidisc_workloads::by_name(name, scale, seed)
        .unwrap_or_else(|| panic!("unknown workload {name}"));
    let r = run_workload(&w, MachineConfig::paper());
    let mut out = String::new();
    let base = r.baseline();
    let _ = writeln!(out, "=== {} (work = {} dynamic instructions) ===", w.name, base.work_instrs);
    for st in &r.per_model {
        let _ = writeln!(
            out,
            "\n{}: {} cycles, IPC {:.3}, L1 miss {:.2}%, speed-up {:.3}x",
            st.model,
            st.cycles,
            st.ipc(),
            100.0 * st.l1_miss_rate(),
            st.speedup_over(base)
        );
        for (n, cs) in &st.cores {
            let _ = writeln!(
                out,
                "  core {n:<12} committed {:>9}  lod {:>6}  q-stalls[LDQ,SDQ,CDQ,CQ,SCQ] {:?}  mem-dep {:>6}  mispred {:>6}",
                cs.committed, cs.lod_events, cs.dispatch_stall_q, cs.mem_dep_stalls, cs.mispredicts
            );
        }
        if let Some(c) = &st.cmp {
            let _ = writeln!(
                out,
                "  cmp  forks {} (dropped {})  instrs {}  prefetches {} (dropped {})  scq-block {}  done {}",
                c.forks, c.dropped_forks, c.instrs, c.prefetches, c.dropped_prefetches,
                c.scq_block_cycles, c.completed_threads
            );
        }
        let _ = writeln!(
            out,
            "  mem  useful-pref {}  late-pref {}  pref-accesses {}  mshr-rejects {}",
            st.mem.l1.useful_prefetch_hits,
            st.mem.l1.late_prefetch_hits,
            st.mem.l1.prefetch_accesses,
            st.mem.mshr_rejects
        );
        let q = &st.queues;
        let _ = writeln!(
            out,
            "  queues pushes/pops  LDQ {}/{}  SDQ {}/{}  CDQ {}/{}  CQ {}/{}  SCQ {}/{}",
            q[0].pushes, q[0].pops, q[1].pushes, q[1].pops, q[2].pushes, q[2].pops,
            q[3].pushes, q[3].pops, q[4].pushes, q[4].pops
        );
    }
    out
}

/// Renders the first `cycles` cycles of a HiDISC run as a pipeline trace
/// (one line per cycle per core), behind `repro trace`.
pub fn pipeline_trace(name: &str, scale: Scale, seed: u64, cycles: u64) -> String {
    use std::fmt::Write;
    let w = hidisc_workloads::by_name(name, scale, seed)
        .unwrap_or_else(|| panic!("unknown workload {name}"));
    let env = env_of(&w);
    let c = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();
    let mut m = hidisc::Machine::new(Model::HiDisc, &c, &env, MachineConfig::paper());
    let mut out = String::new();
    let st = m
        .run_observed(c.profile.dyn_instrs, |mach| {
            let _ = write!(out, "cycle {:>6}", mach.now());
            for s in mach.snapshots() {
                let _ = write!(out, " | {s}");
            }
            if let Some(t) = mach.cmp_threads() {
                let _ = write!(out, " | CMP threads {t}");
            }
            let _ = writeln!(out);
            mach.now() < cycles
        })
        .unwrap();
    let _ = writeln!(
        out,
        "... ran to completion in {} cycles (IPC {:.3})",
        st.cycles,
        st.ipc()
    );
    out
}

/// Renders Figure 8 as CSV (for plotting).
pub fn fig8_csv(rows: &[Fig8Row]) -> String {
    let mut out = String::from("benchmark,superscalar,cp_ap,cp_cmp,hidisc\n");
    for r in rows {
        out.push_str(&format!(
            "{},{:.6},{:.6},{:.6},{:.6}\n",
            r.name, r.speedup[0], r.speedup[1], r.speedup[2], r.speedup[3]
        ));
    }
    out
}

/// Renders Figure 9 as CSV.
pub fn fig9_csv(rows: &[Fig9Row]) -> String {
    let mut out = String::from("benchmark,base_miss_rate,cp_ap,cp_cmp,hidisc\n");
    for r in rows {
        out.push_str(&format!(
            "{},{:.6},{:.6},{:.6},{:.6}\n",
            r.name, r.base_miss_rate, r.ratio[1], r.ratio[2], r.ratio[3]
        ));
    }
    out
}

/// Renders Figure 10 as CSV.
pub fn fig10_csv(series: &[Fig10Series]) -> String {
    let mut out = String::from("benchmark,l2_latency,mem_latency,superscalar,cp_ap,cp_cmp,hidisc\n");
    for s in series {
        for (li, (l2, mem)) in FIG10_LATENCIES.into_iter().enumerate() {
            let r = s.ipc[li];
            out.push_str(&format!(
                "{},{},{},{:.6},{:.6},{:.6},{:.6}\n",
                s.name, l2, mem, r[0], r[1], r[2], r[3]
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Related-work comparison (paper §2): hardware and software prefetching
// ---------------------------------------------------------------------------

/// One row of the related-work comparison: cycles normalised to the plain
/// superscalar (higher = faster).
#[derive(Debug, Clone)]
pub struct RelatedRow {
    pub name: &'static str,
    /// Speed-up over the plain superscalar for:
    /// [RPT hardware prefetch, software prefetch, CP+CMP, HiDISC].
    pub speedup: [f64; 4],
}

/// Compares HiDISC against the two prefetching families of the paper's
/// Section 2: a Chen-Baer stride prefetcher (the paper's reference \[3\])
/// and Mowry-style compiler-inserted prefetching (reference \[9\]).
pub fn related_work(names: &[&str], scale: Scale, seed: u64) -> Vec<RelatedRow> {
    use hidisc_mem::RptConfig;
    use hidisc_slicer::swpref::insert_software_prefetch;

    names
        .iter()
        .map(|&name| {
            let w = hidisc_workloads::by_name(name, scale, seed)
                .unwrap_or_else(|| panic!("unknown workload {name}"));
            let env = env_of(&w);
            let compiled = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();

            let base =
                run_model(Model::Superscalar, &compiled, &env, MachineConfig::paper()).unwrap();

            // 1. superscalar + hardware stride prefetcher
            let mut hw_cfg = MachineConfig::paper();
            hw_cfg.superscalar.hw_prefetcher = Some(RptConfig::default());
            let hw = run_model(Model::Superscalar, &compiled, &env, hw_cfg).unwrap();
            assert_eq!(hw.mem_checksum, base.mem_checksum, "{name}: RPT diverged");

            // 2. superscalar running the software-prefetched binary
            let (sw_prog, _) = insert_software_prefetch(&w.prog, 8);
            let sw_compiled = compile(&sw_prog, &env, &CompilerConfig::default()).unwrap();
            let sw =
                run_model(Model::Superscalar, &sw_compiled, &env, MachineConfig::paper()).unwrap();
            assert_eq!(sw.mem_checksum, base.mem_checksum, "{name}: swpref diverged");

            // 3 & 4. the paper's models
            let cp_cmp = run_model(Model::CpCmp, &compiled, &env, MachineConfig::paper()).unwrap();
            let hidisc =
                run_model(Model::HiDisc, &compiled, &env, MachineConfig::paper()).unwrap();

            let s = |v: &hidisc::MachineStats| base.cycles as f64 / v.cycles as f64;
            RelatedRow { name: w.name, speedup: [s(&hw), s(&sw), s(&cp_cmp), s(&hidisc)] }
        })
        .collect()
}

/// Renders the related-work table.
pub fn render_related(rows: &[RelatedRow]) -> String {
    let mut out = String::from(
        "Related-work comparison: speed-up over the plain superscalar\n\
         benchmark     HW-stride  SW-pref   CP+CMP   HiDISC\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<13} {:>9.3} {:>8.3} {:>8.3} {:>8.3}\n",
            r.name, r.speedup[0], r.speedup[1], r.speedup[2], r.speedup[3]
        ));
    }
    out
}

#[cfg(test)]
mod related_tests {
    use super::*;

    #[test]
    fn related_work_comparators_run_and_validate() {
        let rows = related_work(&["update", "dm"], Scale::Test, 5);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            for (i, s) in r.speedup.iter().enumerate() {
                assert!(*s > 0.5 && *s < 5.0, "{} variant {i} speedup {s}", r.name);
            }
        }
        assert!(!render_related(&rows).is_empty());
    }
}
