//! # hidisc-bench — the paper-reproduction harness
//!
//! Runs the experiments of the HiDISC paper's evaluation section and
//! regenerates every table and figure:
//!
//! * **Figure 8** — speed-up of CP+AP, CP+CMP and HiDISC over the baseline
//!   superscalar, per benchmark ([`fig8`]);
//! * **Table 2** — average speed-up of the three models ([`table2`]);
//! * **Figure 9** — relative L1 demand miss rate per benchmark
//!   ([`fig9`]);
//! * **Figure 10** — IPC under the L2/memory latency sweep
//!   {4/40, 8/80, 12/120, 16/160} for Pointer and Neighborhood
//!   ([`fig10`]);
//! * **Table 1** — the simulation parameters ([`Table1Report`]).
//!
//! Runs are deterministic for a given seed. Every artifact renders through
//! the [`Report`] trait — an aligned text table or CSV — so the `repro`
//! binary's `--format {text,csv}` flag works uniformly.

#![forbid(unsafe_code)]

use hidisc::telemetry::{Category, ChromeTraceSink, IntervalMetrics, StreamingSink, TraceConfig};
use hidisc::{run_model, Machine, MachineConfig, MachineStats, Model};
use hidisc_slicer::{compile, CompiledWorkload, CompilerConfig, ExecEnv};
use hidisc_workloads::{suite, Scale, Workload};
use std::ops::ControlFlow;
use std::sync::Arc;

pub mod pool;
pub mod sampling;

/// All four models of one benchmark under one machine configuration.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Statistics per model, in [`Model::ALL`] order.
    pub per_model: Vec<MachineStats>,
}

impl SuiteResult {
    /// The baseline (superscalar) run.
    pub fn baseline(&self) -> &MachineStats {
        &self.per_model[0]
    }

    /// Statistics of one model.
    pub fn of(&self, m: Model) -> &MachineStats {
        self.per_model
            .iter()
            .find(|s| s.model == m)
            .expect("all models present")
    }
}

/// Execution environment of a workload.
pub fn env_of(w: &Workload) -> ExecEnv {
    ExecEnv {
        regs: w.regs.clone(),
        mem: w.mem.clone(),
        max_steps: w.max_steps,
    }
}

/// A workload compiled once and shared (read-only) by every grid cell
/// that simulates it, so latency sweeps and model grids never recompile.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Benchmark name.
    pub name: &'static str,
    /// Execution environment (initial registers/memory).
    pub env: ExecEnv,
    /// The compiled program, shared across worker threads.
    pub compiled: Arc<CompiledWorkload>,
}

/// Compiles one workload for grid running. Debug builds run the static
/// stream-slice verifier as a compiler post-pass: a slicer bug should be a
/// located diagnostic here, not a hung or diverging simulation later.
pub fn prepare(w: &Workload) -> Prepared {
    let env = env_of(w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default())
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
    #[cfg(debug_assertions)]
    {
        let report = hidisc_verify::verify(&hidisc_verify::VerifyInput::of(
            &compiled,
            hidisc_verify::DepthConfig::paper(),
        ));
        let first_error = report.errors().next().map(|d| d.to_string());
        if let Some(d) = first_error {
            panic!("{}: slicer output failed verification: {d}", w.name);
        }
        // The symbolic occupancy bounds must dominate the greedy oracle's
        // observed peaks — a peak above its bound means the interval
        // analysis is unsound for this triple.
        for b in &report.bounds {
            let peak = report.greedy_peaks[hidisc_verify::queue_index(b.queue)];
            assert!(
                b.bound >= peak,
                "{}: symbolic {} bound {} below greedy peak {peak}",
                w.name,
                b.queue.name(),
                b.bound,
            );
        }
    }
    Prepared {
        name: w.name,
        env,
        compiled: Arc::new(compiled),
    }
}

/// Runs every model of one prepared workload under `cfg`, cross-checking
/// that all models compute the same final memory.
fn run_prepared(p: &Prepared, cfg: MachineConfig) -> SuiteResult {
    let per_model: Vec<MachineStats> = Model::ALL
        .into_iter()
        .map(|m| {
            run_model(m, &p.compiled, &p.env, cfg)
                .unwrap_or_else(|e| panic!("{} on {m}: {e}", p.name))
        })
        .collect();
    check_models_agree(p.name, &per_model);
    SuiteResult {
        name: p.name,
        per_model,
    }
}

/// Cross-model safety net: every model must compute the same final memory.
fn check_models_agree(name: &str, per_model: &[MachineStats]) {
    for s in &per_model[1..] {
        assert_eq!(
            s.mem_checksum, per_model[0].mem_checksum,
            "{}: {} diverged from baseline memory",
            name, s.model
        );
    }
}

/// Compiles and runs one workload on every model.
pub fn run_workload(w: &Workload, cfg: MachineConfig) -> SuiteResult {
    run_prepared(&prepare(w), cfg)
}

/// Runs the full seven-benchmark suite on the worker pool: compilation is
/// parallel over benchmarks, then the flattened (benchmark × model) grid
/// is parallel over all cells.
pub fn run_suite(scale: Scale, seed: u64, cfg: MachineConfig) -> Vec<SuiteResult> {
    let workloads = suite(scale, seed);
    let prepared = pool::run_indexed(workloads.len(), |i| prepare(&workloads[i]));
    let nm = Model::ALL.len();
    let stats = pool::run_indexed(prepared.len() * nm, |k| {
        let p = &prepared[k / nm];
        let m = Model::ALL[k % nm];
        run_model(m, &p.compiled, &p.env, cfg).unwrap_or_else(|e| panic!("{} on {m}: {e}", p.name))
    });
    prepared
        .iter()
        .zip(stats.chunks(nm))
        .map(|(p, per_model)| {
            check_models_agree(p.name, per_model);
            SuiteResult {
                name: p.name,
                per_model: per_model.to_vec(),
            }
        })
        .collect()
}

/// Simulator-performance summary of a set of runs: committed instructions,
/// host wall time (summed across runs — with a worker pool the wall clock
/// of the whole sweep is shorter), aggregate MSIPS, and how much of the
/// simulated time the idle-cycle fast-forward skipped.
pub fn msips_line(results: &[SuiteResult]) -> String {
    let all = || results.iter().flat_map(|r| r.per_model.iter());
    let committed: u64 = all().map(|s| s.total_committed()).sum();
    let wall_ns: u64 = all().map(|s| s.host_wall_ns).sum();
    let cycles: u64 = all().map(|s| s.cycles).sum();
    let skipped: u64 = all().map(|s| s.ff_skipped_cycles).sum();
    let jumps: u64 = all().map(|s| s.ff_jumps).sum();
    let msips = if wall_ns == 0 {
        0.0
    } else {
        committed as f64 * 1e3 / wall_ns as f64
    };
    let pct = if cycles == 0 {
        0.0
    } else {
        100.0 * skipped as f64 / cycles as f64
    };
    format!(
        "sim speed: {committed} instrs in {:.3} s CPU = {msips:.2} MSIPS \
         (fast-forward skipped {pct:.1}% of {cycles} cycles in {jumps} jumps)",
        wall_ns as f64 / 1e9
    )
}

/// Runs the full suite like [`run_suite`] while also timing the whole
/// parallel sweep on the calling thread. The two clocks answer different
/// questions: each run's `host_wall_ns` is measured inside `Machine::run`
/// on whichever pool worker executed that cell (so summing them gives CPU
/// cost), while the value returned here is the wall-clock time the sweep
/// actually took across all workers.
pub fn run_suite_timed(scale: Scale, seed: u64, cfg: MachineConfig) -> (Vec<SuiteResult>, u64) {
    let t0 = std::time::Instant::now();
    let results = run_suite(scale, seed, cfg);
    (results, (t0.elapsed().as_nanos() as u64).max(1))
}

/// The [`msips_line`] per-run (CPU) summary extended with the parallel
/// sweep's aggregate throughput: the same committed-instruction total
/// divided by the sweep's wall-clock time.
pub fn suite_speed_line(results: &[SuiteResult], sweep_wall_ns: u64) -> String {
    let committed: u64 = results
        .iter()
        .flat_map(|r| r.per_model.iter())
        .map(|s| s.total_committed())
        .sum();
    let aggregate = committed as f64 * 1e3 / sweep_wall_ns as f64;
    format!(
        "{}\nsweep wall: {:.3} s on {} worker(s) = {aggregate:.2} MSIPS aggregate",
        msips_line(results),
        sweep_wall_ns as f64 / 1e9,
        pool::threads()
    )
}

// ---------------------------------------------------------------------------
// Reports: every figure/table artifact renders through one trait
// ---------------------------------------------------------------------------

/// A paper artifact — a figure or table — that renders both as the aligned
/// text table `repro` prints by default and as CSV for plotting. Every
/// artifact-producing `repro` subcommand goes through this trait, which is
/// what makes `--format {text,csv}` work uniformly.
pub trait Report {
    /// Aligned, human-readable text table.
    fn render_text(&self) -> String;
    /// Machine-readable CSV: a header line plus one row per data point.
    fn render_csv(&self) -> String;
    /// Renders in the format selected by `repro --format`.
    fn render(&self, csv: bool) -> String {
        if csv {
            self.render_csv()
        } else {
            self.render_text()
        }
    }
}

/// One Figure-8 row: speed-up over the baseline per model.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    pub name: &'static str,
    /// Speed-ups in [`Model::ALL`] order (baseline is 1.0 by definition).
    pub speedup: [f64; 4],
}

/// Figure 8: per-benchmark speed-up over the baseline superscalar.
pub fn fig8(results: &[SuiteResult]) -> Vec<Fig8Row> {
    results
        .iter()
        .map(|r| {
            let base = r.baseline();
            let mut speedup = [0.0; 4];
            for (i, s) in r.per_model.iter().enumerate() {
                speedup[i] = s.speedup_over(base);
            }
            Fig8Row {
                name: r.name,
                speedup,
            }
        })
        .collect()
}

/// [`Report`] for Figure 8 (see [`fig8`]).
#[derive(Debug, Clone)]
pub struct Fig8Report(pub Vec<Fig8Row>);

impl Report for Fig8Report {
    fn render_text(&self) -> String {
        let mut out = String::from(
            "Figure 8: speed-up over the baseline superscalar\n\
             benchmark     Superscalar   CP+AP    CP+CMP   HiDISC\n",
        );
        for r in &self.0 {
            out.push_str(&format!(
                "{:<13} {:>10.3} {:>8.3} {:>8.3} {:>8.3}\n",
                r.name, r.speedup[0], r.speedup[1], r.speedup[2], r.speedup[3]
            ));
        }
        out
    }

    fn render_csv(&self) -> String {
        let mut out = String::from("benchmark,superscalar,cp_ap,cp_cmp,hidisc\n");
        for r in &self.0 {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{:.6}\n",
                r.name, r.speedup[0], r.speedup[1], r.speedup[2], r.speedup[3]
            ));
        }
        out
    }
}

/// Table 2: average speed-up of the three non-baseline models (arithmetic
/// mean of per-benchmark speed-ups, as the paper reports).
pub fn table2(results: &[SuiteResult]) -> [f64; 4] {
    let rows = fig8(results);
    let mut avg = [0.0; 4];
    for row in &rows {
        for (a, s) in avg.iter_mut().zip(row.speedup) {
            *a += s;
        }
    }
    for a in &mut avg {
        *a /= rows.len() as f64;
    }
    avg
}

/// [`Report`] for Table 2 (see [`table2`]).
#[derive(Debug, Clone)]
pub struct Table2Report(pub [f64; 4]);

impl Report for Table2Report {
    fn render_text(&self) -> String {
        let avg = &self.0;
        format!(
            "Table 2: average speed-up over the baseline\n\
             CP+AP   (access/execute decoupling): {:+.1}%\n\
             CP+CMP  (cache prefetching):         {:+.1}%\n\
             HiDISC  (decoupling + prefetching):  {:+.1}%\n",
            (avg[1] - 1.0) * 100.0,
            (avg[2] - 1.0) * 100.0,
            (avg[3] - 1.0) * 100.0
        )
    }

    fn render_csv(&self) -> String {
        let mut out = String::from("model,avg_speedup\n");
        for (label, v) in ["superscalar", "cp_ap", "cp_cmp", "hidisc"]
            .into_iter()
            .zip(self.0)
        {
            out.push_str(&format!("{label},{v:.6}\n"));
        }
        out
    }
}

/// One Figure-9 row: L1 demand miss rate relative to the baseline.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    pub name: &'static str,
    /// `miss_rate(model) / miss_rate(baseline)` in [`Model::ALL`] order.
    pub ratio: [f64; 4],
    /// Absolute baseline miss rate (context for the table).
    pub base_miss_rate: f64,
}

/// Figure 9: relative cache miss rate per benchmark.
pub fn fig9(results: &[SuiteResult]) -> Vec<Fig9Row> {
    results
        .iter()
        .map(|r| {
            let base = r.baseline();
            let mut ratio = [0.0; 4];
            for (i, s) in r.per_model.iter().enumerate() {
                ratio[i] = s.miss_rate_ratio(base);
            }
            Fig9Row {
                name: r.name,
                ratio,
                base_miss_rate: base.l1_miss_rate(),
            }
        })
        .collect()
}

/// [`Report`] for Figure 9 (see [`fig9`]).
#[derive(Debug, Clone)]
pub struct Fig9Report(pub Vec<Fig9Row>);

impl Report for Fig9Report {
    fn render_text(&self) -> String {
        let mut out = String::from(
            "Figure 9: L1 demand miss rate relative to the baseline (1.0 = baseline)\n\
             benchmark     base-rate   CP+AP    CP+CMP   HiDISC\n",
        );
        for r in &self.0 {
            out.push_str(&format!(
                "{:<13} {:>9.4} {:>8.3} {:>8.3} {:>8.3}\n",
                r.name, r.base_miss_rate, r.ratio[1], r.ratio[2], r.ratio[3]
            ));
        }
        out
    }

    fn render_csv(&self) -> String {
        let mut out = String::from("benchmark,base_miss_rate,cp_ap,cp_cmp,hidisc\n");
        for r in &self.0 {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{:.6}\n",
                r.name, r.base_miss_rate, r.ratio[1], r.ratio[2], r.ratio[3]
            ));
        }
        out
    }
}

/// The Figure-10 latency sweep points `(l2_latency, memory_latency)`.
pub const FIG10_LATENCIES: [(u32, u32); 4] = [(4, 40), (8, 80), (12, 120), (16, 160)];

/// One Figure-10 series: IPC of each model across the latency sweep.
#[derive(Debug, Clone)]
pub struct Fig10Series {
    pub name: &'static str,
    /// `ipc[lat][model]` with latencies in [`FIG10_LATENCIES`] order and
    /// models in [`Model::ALL`] order.
    pub ipc: Vec<[f64; 4]>,
}

/// Figure 10: latency tolerance for the given benchmarks (the paper uses
/// Pointer and Neighborhood).
pub fn fig10(names: &[&str], scale: Scale, seed: u64) -> Vec<Fig10Series> {
    let prepared = pool::run_indexed(names.len(), |i| {
        let w = hidisc_workloads::by_name(names[i], scale, seed)
            .unwrap_or_else(|| panic!("unknown workload {}", names[i]));
        prepare(&w)
    });
    // One flat grid over (benchmark × latency point × model): each cell is
    // an independent simulation sharing the Arc'd compiled program.
    let nl = FIG10_LATENCIES.len();
    let nm = Model::ALL.len();
    let stats = pool::run_indexed(prepared.len() * nl * nm, |k| {
        let p = &prepared[k / (nl * nm)];
        let (l2, mem) = FIG10_LATENCIES[(k / nm) % nl];
        let m = Model::ALL[k % nm];
        run_model(
            m,
            &p.compiled,
            &p.env,
            MachineConfig::paper_with_latency(l2, mem),
        )
        .unwrap_or_else(|e| panic!("{} on {m} at {l2}/{mem}: {e}", p.name))
    });
    prepared
        .iter()
        .zip(stats.chunks(nl * nm))
        .map(|(p, per_point)| {
            let ipc = per_point
                .chunks(nm)
                .map(|per_model| {
                    check_models_agree(p.name, per_model);
                    let mut row = [0.0; 4];
                    for (i, st) in per_model.iter().enumerate() {
                        row[i] = st.ipc();
                    }
                    row
                })
                .collect();
            Fig10Series { name: p.name, ipc }
        })
        .collect()
}

/// [`Report`] for Figure 10 (see [`fig10`]).
#[derive(Debug, Clone)]
pub struct Fig10Report(pub Vec<Fig10Series>);

impl Report for Fig10Report {
    fn render_text(&self) -> String {
        let mut out = String::from("Figure 10: IPC under the L2/memory latency sweep\n");
        for s in &self.0 {
            out.push_str(&format!(
                "\n{} — IPC\nL2/mem      Superscalar   CP+AP    CP+CMP   HiDISC\n",
                s.name
            ));
            for (li, (l2, mem)) in FIG10_LATENCIES.into_iter().enumerate() {
                let r = s.ipc[li];
                out.push_str(&format!(
                    "{:>2}/{:<6} {:>11.3} {:>8.3} {:>8.3} {:>8.3}\n",
                    l2, mem, r[0], r[1], r[2], r[3]
                ));
            }
        }
        out
    }

    fn render_csv(&self) -> String {
        let mut out =
            String::from("benchmark,l2_latency,mem_latency,superscalar,cp_ap,cp_cmp,hidisc\n");
        for s in &self.0 {
            for (li, (l2, mem)) in FIG10_LATENCIES.into_iter().enumerate() {
                let r = s.ipc[li];
                out.push_str(&format!(
                    "{},{},{},{:.6},{:.6},{:.6},{:.6}\n",
                    s.name, l2, mem, r[0], r[1], r[2], r[3]
                ));
            }
        }
        out
    }
}

/// [`Report`] for Table 1, the simulation parameters, rendered as the
/// paper presents them.
#[derive(Debug, Clone)]
pub struct Table1Report(pub MachineConfig);

impl Table1Report {
    /// The parameter table as (name, value) rows, shared by both formats.
    fn rows(&self) -> Vec<(&'static str, String)> {
        let cfg = &self.0;
        let s = &cfg.superscalar;
        vec![
            ("Branch predict mode", "Bimodal".into()),
            ("Branch table size", s.predictor_entries.to_string()),
            ("Issue/commit width", s.issue_width.to_string()),
            (
                "Instruction window",
                format!(
                    "Superscalar {} / AP {} / CP {}",
                    s.ruu_size, cfg.ap.ruu_size, cfg.cp.ruu_size
                ),
            ),
            (
                "Integer functional units",
                format!("ALU x{}, MUL/DIV x{}", s.int_alu, s.int_mul),
            ),
            (
                "FP functional units",
                format!(
                    "ALU x{}, MUL/DIV x{} (superscalar and CP)",
                    s.fp_alu, s.fp_mul
                ),
            ),
            (
                "Memory ports",
                format!("{} per memory-capable processor", s.mem_ports),
            ),
            (
                "L1 data cache",
                format!(
                    "{} sets, {}B blocks, {}-way, LRU",
                    cfg.mem.l1.sets, cfg.mem.l1.block_bytes, cfg.mem.l1.ways
                ),
            ),
            ("L1 latency", format!("{} cycle(s)", cfg.mem.l1.latency)),
            (
                "Unified L2",
                format!(
                    "{} sets, {}B blocks, {}-way, LRU",
                    cfg.mem.l2.sets, cfg.mem.l2.block_bytes, cfg.mem.l2.ways
                ),
            ),
            ("L2 latency", format!("{} cycles", cfg.mem.l2.latency)),
            ("Memory latency", format!("{} cycles", cfg.mem.mem_latency)),
            (
                "Queues (LDQ/SDQ/CDQ/CQ/SCQ)",
                format!(
                    "{}/{}/{}/{}/{} entries",
                    cfg.queues.ldq, cfg.queues.sdq, cfg.queues.cdq, cfg.queues.cq, cfg.queues.scq
                ),
            ),
        ]
    }
}

impl Report for Table1Report {
    fn render_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.rows() {
            out.push_str(&format!("{k:<29}{v}\n"));
        }
        out
    }

    fn render_csv(&self) -> String {
        let mut out = String::from("parameter,value\n");
        for (k, v) in self.rows() {
            let v = if v.contains(',') {
                format!("\"{v}\"")
            } else {
                v
            };
            out.push_str(&format!("{k},{v}\n"));
        }
        out
    }
}

/// Per-benchmark speed-up table for the auxiliary suites (`repro micro`
/// and `repro extras`): one row per workload, models in [`Model::ALL`]
/// order.
#[derive(Debug, Clone)]
pub struct SpeedupReport {
    /// Table heading.
    pub title: &'static str,
    /// `(benchmark, speed-up per model)` rows.
    pub rows: Vec<(&'static str, [f64; 4])>,
}

impl SpeedupReport {
    /// Builds the table by running every workload on all four models.
    pub fn from_workloads(title: &'static str, workloads: &[Workload], cfg: MachineConfig) -> Self {
        let rows = workloads
            .iter()
            .map(|w| {
                let r = run_workload(w, cfg);
                let mut s = [0.0; 4];
                for (i, st) in r.per_model.iter().enumerate() {
                    s[i] = st.speedup_over(r.baseline());
                }
                (r.name, s)
            })
            .collect();
        SpeedupReport { title, rows }
    }
}

impl Report for SpeedupReport {
    fn render_text(&self) -> String {
        let mut out = format!("{}\n", self.title);
        for (name, s) in &self.rows {
            out.push_str(&format!("{name:<13}"));
            for (m, v) in Model::ALL.into_iter().zip(s) {
                out.push_str(&format!(" {m}={v:.3}"));
            }
            out.push('\n');
        }
        out
    }

    fn render_csv(&self) -> String {
        let mut out = String::from("benchmark,superscalar,cp_ap,cp_cmp,hidisc\n");
        for (name, s) in &self.rows {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{:.6}\n",
                name, s[0], s[1], s[2], s[3]
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Static verification behind `repro check`
// ---------------------------------------------------------------------------

/// One `repro check` run: the verifier's findings for a workload compiled
/// at the given scale, rendered through [`Report`] like every other
/// artifact. The CSV form also carries one `DB000` info row per queue with
/// the computed static occupancy bound, so `--scq-depth` sweeps can cite
/// the bound that makes a configuration safe.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Workload name.
    pub name: String,
    /// The verifier's findings and bounds.
    pub report: hidisc_verify::VerifyReport,
}

/// Compiles `name` and statically verifies the resulting triple against
/// the given queue depths.
pub fn check_workload(
    name: &str,
    scale: Scale,
    seed: u64,
    depths: hidisc_verify::DepthConfig,
) -> CheckReport {
    let w = hidisc_workloads::by_name(name, scale, seed)
        .unwrap_or_else(|| panic!("unknown workload {name}"));
    let env = env_of(&w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default())
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
    CheckReport {
        name: name.to_string(),
        report: hidisc_verify::verify(&hidisc_verify::VerifyInput::of(&compiled, depths)),
    }
}

/// The queue depths of a machine configuration, as the verifier's mirror
/// type (so `repro check --scq-depth N` bounds against the same depths the
/// simulation would run with).
pub fn depths_of(cfg: &MachineConfig) -> hidisc_verify::DepthConfig {
    hidisc_verify::DepthConfig {
        ldq: cfg.queues.ldq,
        sdq: cfg.queues.sdq,
        cdq: cfg.queues.cdq,
        cq: cfg.queues.cq,
        scq: cfg.queues.scq,
    }
}

impl CheckReport {
    /// True when the workload verified without errors (warnings allowed).
    pub fn passed(&self) -> bool {
        self.report.no_errors()
    }

    /// [`Self::passed`], optionally promoting warnings to failures
    /// (`repro check --deny-warnings`).
    pub fn passed_with(&self, deny_warnings: bool) -> bool {
        self.passed() && (!deny_warnings || self.report.warnings().count() == 0)
    }
}

fn csv_quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

impl Report for CheckReport {
    fn render_text(&self) -> String {
        use std::fmt::Write;
        let r = &self.report;
        let mut out = format!(
            "verification of {}: {} error(s), {} warning(s) over {} segment pair(s), {} queue(s) analysed\n",
            self.name,
            r.errors().count(),
            r.warnings().count(),
            r.segments,
            r.queues_analysed
        );
        for d in &r.diagnostics {
            let _ = writeln!(out, "  {d}");
        }
        let _ = write!(out, "static occupancy bounds:");
        for b in &r.bounds {
            let _ = write!(out, "  {} {}/{}", b.queue.name(), b.bound, b.cap);
        }
        out.push('\n');
        let disambiguated = r.loads.iter().filter(|l| l.stores > 0);
        let _ = writeln!(
            out,
            "alias analysis: {} AS load(s), {} compared against upstream stores",
            r.loads.len(),
            disambiguated.clone().count()
        );
        for l in disambiguated {
            let _ = write!(
                out,
                "  as@{}: {} ({} store(s)",
                l.pc,
                l.verdict.name(),
                l.stores
            );
            match l.against {
                Some(s) => {
                    let _ = writeln!(out, ", worst as@{s})");
                }
                None => {
                    let _ = writeln!(out, ")");
                }
            }
        }
        out
    }

    fn render_csv(&self) -> String {
        let mut out = String::from("workload,code,severity,stream,pc,queue,message\n");
        let r = &self.report;
        for l in r.loads.iter().filter(|l| l.stores > 0) {
            out.push_str(&format!(
                "{},AL000,info,as,{},,{}\n",
                csv_quote(&self.name),
                l.pc,
                csv_quote(&format!(
                    "load classified {} against {} upstream store(s){}",
                    l.verdict.name(),
                    l.stores,
                    l.against
                        .map(|s| format!(", worst at as@{s}"))
                        .unwrap_or_default()
                )),
            ));
        }
        for d in &r.diagnostics {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                csv_quote(&self.name),
                d.code,
                d.severity(),
                d.loc.stream_name(),
                d.loc.pc(),
                d.queue.map(|q| q.name()).unwrap_or(""),
                csv_quote(&d.msg)
            ));
        }
        for b in &r.bounds {
            out.push_str(&format!(
                "{},DB000,info,,,{},{}\n",
                csv_quote(&self.name),
                b.queue.name(),
                csv_quote(&format!(
                    "static occupancy bound {} of configured depth {}",
                    b.bound, b.cap
                ))
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Speculation analysis behind `repro check --speculation`
// ---------------------------------------------------------------------------

/// One `repro check <workload> --speculation` run: the advisory run-ahead
/// analysis ([`hidisc_verify::speculation`]) for a compiled workload —
/// squash safety and hoistable-load counts for both edges of every AS
/// conditional branch, plus the per-load alias classification backing
/// them. Renders as text, CSV (one row per region and per disambiguated
/// load) and, via [`SpecCheckReport::to_json`], as a JSON document.
#[derive(Debug, Clone)]
pub struct SpecCheckReport {
    /// Workload name.
    pub name: String,
    /// The speculation analysis.
    pub spec: hidisc_verify::SpeculationReport,
}

/// Compiles `name` and runs the speculation analysis on the resulting
/// triple.
pub fn speculation_workload(
    name: &str,
    scale: Scale,
    seed: u64,
    depths: hidisc_verify::DepthConfig,
) -> SpecCheckReport {
    let w = hidisc_workloads::by_name(name, scale, seed)
        .unwrap_or_else(|| panic!("unknown workload {name}"));
    let env = env_of(&w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default())
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
    SpecCheckReport {
        name: name.to_string(),
        spec: hidisc_verify::speculation(&hidisc_verify::VerifyInput::of(&compiled, depths)),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl SpecCheckReport {
    /// The whole analysis as a JSON document (`--format json`).
    pub fn to_json(&self) -> String {
        let regions: Vec<String> = self
            .spec
            .regions
            .iter()
            .map(|r| {
                format!(
                    "{{\"branch_pc\":{},\"edge\":\"{}\",\"start\":{},\"end\":{},\
                     \"marked\":{},\"safe\":{},\"hazard\":{},\"loads\":{},\"hoistable\":{}}}",
                    r.branch_pc,
                    r.dir.name(),
                    r.start,
                    r.end,
                    r.marked,
                    r.safe,
                    r.hazard
                        .as_deref()
                        .map(|h| format!("\"{}\"", json_escape(h)))
                        .unwrap_or_else(|| "null".into()),
                    r.loads,
                    r.hoistable,
                )
            })
            .collect();
        let loads: Vec<String> = self
            .spec
            .loads
            .iter()
            .map(|l| {
                format!(
                    "{{\"pc\":{},\"verdict\":\"{}\",\"stores\":{},\"against\":{}}}",
                    l.pc,
                    l.verdict.name(),
                    l.stores,
                    l.against
                        .map(|s| s.to_string())
                        .unwrap_or_else(|| "null".into()),
                )
            })
            .collect();
        format!(
            "{{\"workload\":\"{}\",\"regions\":[{}],\"loads\":[{}],\
             \"region_loads\":{},\"hoistable\":{},\"recovery_score\":{:.6}}}\n",
            json_escape(&self.name),
            regions.join(","),
            loads.join(","),
            self.spec.region_loads,
            self.spec.hoistable,
            self.spec.recovery_score(),
        )
    }
}

impl Report for SpecCheckReport {
    fn render_text(&self) -> String {
        use std::fmt::Write;
        let s = &self.spec;
        let mut out = format!(
            "speculation analysis of {}: {} region(s), {} squash-safe, {} profitable; \
             {}/{} region load(s) hoistable (decoupling-recovery score {:.3})\n",
            self.name,
            s.regions.len(),
            s.regions.iter().filter(|r| r.safe).count(),
            s.profitable_regions().count(),
            s.hoistable,
            s.region_loads,
            s.recovery_score(),
        );
        for r in &s.regions {
            let _ = write!(
                out,
                "  as@{} {} [{}, {}):",
                r.branch_pc,
                r.dir.name(),
                r.start,
                r.end
            );
            match &r.hazard {
                None => {
                    let _ = write!(out, " safe, {} load(s), {} hoistable", r.loads, r.hoistable);
                }
                Some(h) => {
                    let _ = write!(out, " unsafe ({h}), {} load(s)", r.loads);
                }
            }
            if r.marked {
                out.push_str(" [declared]");
            }
            out.push('\n');
        }
        let compared = s.loads.iter().filter(|l| l.stores > 0);
        let _ = writeln!(
            out,
            "alias classification: {} AS load(s), {} compared against upstream stores",
            s.loads.len(),
            compared.clone().count()
        );
        for l in compared {
            let _ = writeln!(
                out,
                "  as@{}: {} ({} store(s){})",
                l.pc,
                l.verdict.name(),
                l.stores,
                l.against
                    .map(|a| format!(", worst as@{a}"))
                    .unwrap_or_default()
            );
        }
        out
    }

    fn render_csv(&self) -> String {
        let mut out =
            String::from("workload,kind,pc,edge,start,end,safe,loads,hoistable,verdict,detail\n");
        for r in &self.spec.regions {
            out.push_str(&format!(
                "{},region,{},{},{},{},{},{},{},,{}\n",
                csv_quote(&self.name),
                r.branch_pc,
                r.dir.name(),
                r.start,
                r.end,
                r.safe,
                r.loads,
                r.hoistable,
                csv_quote(r.hazard.as_deref().unwrap_or("")),
            ));
        }
        for l in &self.spec.loads {
            out.push_str(&format!(
                "{},load,{},,,,,,,{},{}\n",
                csv_quote(&self.name),
                l.pc,
                l.verdict.name(),
                csv_quote(&format!(
                    "{} upstream store(s){}",
                    l.stores,
                    l.against
                        .map(|a| format!(", worst as@{a}"))
                        .unwrap_or_default()
                )),
            ));
        }
        out.push_str(&format!(
            "{},score,,,,,,{},{},,{}\n",
            csv_quote(&self.name),
            self.spec.region_loads,
            self.spec.hoistable,
            csv_quote(&format!("recovery_score={:.6}", self.spec.recovery_score())),
        ));
        out
    }
}

#[cfg(test)]
mod check_tests {
    use super::*;

    #[test]
    fn shipped_workloads_check_clean() {
        let depths = depths_of(&MachineConfig::paper());
        for name in ["dm", "pointer"] {
            let c = check_workload(name, Scale::Test, 3, depths);
            assert!(c.passed(), "{name}: {}", c.render_text());
            assert!(c.report.queues_analysed >= 1);
        }
    }

    #[test]
    fn check_report_renders_both_formats() {
        let c = check_workload("update", Scale::Test, 3, depths_of(&MachineConfig::paper()));
        let text = c.render_text();
        assert!(text.starts_with("verification of update:"));
        assert!(text.contains("static occupancy bounds:"));
        let csv = c.render_csv();
        assert!(csv.starts_with("workload,code,severity,stream,pc,queue,message\n"));
        // Five DB000 bound rows, one per queue, whatever the findings.
        assert_eq!(csv.matches(",DB000,info,").count(), 5);
    }

    #[test]
    fn csv_quoting_escapes_commas_and_quotes() {
        assert_eq!(csv_quote("plain"), "plain");
        assert_eq!(csv_quote("a,b"), "\"a,b\"");
        assert_eq!(csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn deny_warnings_promotes_warnings_to_failure() {
        let c = check_workload(
            "pointer",
            Scale::Test,
            3,
            depths_of(&MachineConfig::paper()),
        );
        assert!(c.passed_with(false));
        // Shipped workloads carry no warnings either, so strict mode also
        // passes; a synthetic warning must flip it.
        assert!(c.passed_with(true));
        let mut strict = c.clone();
        strict.report.diagnostics.push(hidisc_verify::Diagnostic {
            code: hidisc_verify::Code::Al001,
            loc: hidisc_verify::Loc::Access(0),
            queue: None,
            msg: "synthetic".into(),
        });
        assert!(strict.passed_with(false));
        assert!(!strict.passed_with(true));
    }

    #[test]
    fn pointer_speculation_finds_hoistable_runahead_regions() {
        for name in ["pointer", "tc"] {
            let s = speculation_workload(name, Scale::Test, 3, depths_of(&MachineConfig::paper()));
            let profitable: Vec<_> = s.spec.profitable_regions().collect();
            assert!(
                !profitable.is_empty(),
                "{name}: no squash-safe region with hoistable loads\n{}",
                s.render_text()
            );
            assert!(s.spec.recovery_score() > 0.0, "{name}");
        }
    }

    #[test]
    fn speculation_report_renders_all_formats() {
        let s = speculation_workload(
            "pointer",
            Scale::Test,
            3,
            depths_of(&MachineConfig::paper()),
        );
        let text = s.render_text();
        assert!(text.starts_with("speculation analysis of pointer:"));
        assert!(text.contains("decoupling-recovery score"));
        let csv = s.render_csv();
        assert!(csv
            .starts_with("workload,kind,pc,edge,start,end,safe,loads,hoistable,verdict,detail\n"));
        // At least one squash-safe region row with a hoistable load: the
        // pointer chase's loop latch (the row CI greps for).
        assert!(
            csv.lines().any(|l| {
                let f: Vec<&str> = l.split(',').collect();
                f.get(1) == Some(&"region")
                    && f.get(6) == Some(&"true")
                    && f.get(8)
                        .is_some_and(|h| h.parse::<usize>().is_ok_and(|n| n > 0))
            }),
            "{csv}"
        );
        assert_eq!(csv.lines().filter(|l| l.contains(",score,")).count(), 1);
        let json = s.to_json();
        assert!(json.starts_with("{\"workload\":\"pointer\""));
        assert!(json.contains("\"recovery_score\":"));
        assert!(json.contains("\"regions\":[{"));
    }

    /// The differential satellite: across every workload, seed, and depth
    /// configuration, the symbolic occupancy bounds must dominate the peaks
    /// the greedy two-thread oracle actually observes.
    #[test]
    fn symbolic_bounds_dominate_greedy_peaks_everywhere() {
        let deep = hidisc_verify::DepthConfig {
            ldq: 256,
            sdq: 256,
            cdq: 256,
            cq: 256,
            scq: 64,
        };
        for name in hidisc_workloads::names() {
            for seed in [3, 2003] {
                for depths in [depths_of(&MachineConfig::paper()), deep] {
                    let c = check_workload(name, Scale::Test, seed, depths);
                    for b in &c.report.bounds {
                        let peak = c.report.greedy_peaks[hidisc_verify::queue_index(b.queue)];
                        assert!(
                            b.bound >= peak,
                            "{name} seed {seed}: symbolic {} bound {} below greedy peak {peak}",
                            b.queue.name(),
                            b.bound,
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_runs_and_tables_render() {
        let results = run_suite(Scale::Test, 3, MachineConfig::paper());
        assert_eq!(results.len(), 7);
        let f8 = fig8(&results);
        assert!(f8.iter().all(|r| (r.speedup[0] - 1.0).abs() < 1e-12));
        let t2 = table2(&results);
        assert!((t2[0] - 1.0).abs() < 1e-12);
        let f9 = fig9(&results);
        assert_eq!(f9.len(), 7);
        assert!(!Fig8Report(f8).render_text().is_empty());
        assert!(!Table2Report(t2).render_text().is_empty());
        assert!(!Fig9Report(f9).render_text().is_empty());
        let t1 = Table1Report(MachineConfig::paper());
        assert!(t1.render_text().contains("Bimodal"));
        assert!(t1.render_csv().starts_with("parameter,value\n"));
    }

    #[test]
    fn reports_render_both_formats() {
        let r = Fig8Report(vec![Fig8Row {
            name: "update",
            speedup: [1.0, 1.1, 1.2, 1.3],
        }]);
        // CSV: header + one line per row; text: title + header + rows.
        assert_eq!(r.render_csv().lines().count(), 1 + r.0.len());
        assert_eq!(r.render_text().lines().count(), 2 + r.0.len());
        assert_eq!(r.render(true), r.render_csv());
        assert_eq!(r.render(false), r.render_text());
        let t2 = Table2Report([1.0, 1.2, 1.1, 1.4]);
        assert!(t2.render_csv().contains("hidisc,1.400000"));
    }

    #[test]
    fn reports_rebuild_byte_identically_from_minimal_stats() {
        // The sweep endpoint reassembles figures from cached points; the
        // contract is that a report built from `MachineStats::minimal`
        // (carrying only cycles, work and L1 demand behaviour) renders
        // byte-for-byte like one built from the full run.
        let results = run_suite(Scale::Test, 3, MachineConfig::paper());
        let rebuilt: Vec<SuiteResult> = results
            .iter()
            .map(|r| SuiteResult {
                name: r.name,
                per_model: r
                    .per_model
                    .iter()
                    .map(|s| {
                        MachineStats::minimal(
                            s.model,
                            s.cycles,
                            s.work_instrs,
                            s.mem.l1.demand_accesses,
                            s.mem.l1.demand_misses,
                        )
                    })
                    .collect(),
            })
            .collect();
        assert_eq!(
            Fig8Report(fig8(&results)).render_csv(),
            Fig8Report(fig8(&rebuilt)).render_csv()
        );
        assert_eq!(
            Fig9Report(fig9(&results)).render_csv(),
            Fig9Report(fig9(&rebuilt)).render_csv()
        );
    }

    #[test]
    fn fig10_shapes() {
        let series = fig10(&["pointer"], Scale::Test, 3);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].ipc.len(), 4);
        let report = Fig10Report(series);
        assert!(!report.render_text().is_empty());
        assert_eq!(
            report.render_csv().lines().count(),
            1 + FIG10_LATENCIES.len()
        );
        // IPC should not increase as latency grows, for any model.
        for m in 0..4 {
            assert!(
                report.0[0].ipc[0][m] >= report.0[0].ipc[3][m] * 0.98,
                "model {m}: IPC grew with latency"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// One ablation variant of the HiDISC machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Ablation {
    /// The full default HiDISC.
    Full,
    /// Compiler does not extract CMAS threads (pure access/execute
    /// decoupling — should collapse onto CP+AP).
    NoCmas,
    /// CMP with the next-line assist on its own load misses (extension).
    NextLineAssist,
    /// Slip Control Queue depth override (prefetch run-ahead distance).
    ScqDepth(usize),
    /// A single-issue, single-ported CMP (weakest engine).
    WeakCmp,
    /// The paper's future-work extensions: adaptive prefetch distance and
    /// selective triggering.
    Dynamic,
}

impl Ablation {
    /// All variants evaluated by `repro ablate`.
    pub fn all() -> Vec<Ablation> {
        vec![
            Ablation::Full,
            Ablation::NoCmas,
            Ablation::NextLineAssist,
            Ablation::ScqDepth(4),
            Ablation::ScqDepth(64),
            Ablation::WeakCmp,
            Ablation::Dynamic,
        ]
    }

    /// Human-readable label.
    pub fn label(&self) -> String {
        match self {
            Ablation::Full => "full HiDISC".into(),
            Ablation::NoCmas => "no CMAS (CP+AP only)".into(),
            Ablation::NextLineAssist => "next-line assist on".into(),
            Ablation::ScqDepth(d) => format!("SCQ depth {d}"),
            Ablation::WeakCmp => "1-wide 1-port CMP".into(),
            Ablation::Dynamic => "dynamic slip + selective triggers".into(),
        }
    }
}

/// Ablation results for one workload: HiDISC speed-up over the baseline
/// superscalar under each variant.
#[derive(Debug, Clone)]
pub struct AblationRow {
    pub name: &'static str,
    pub speedup: Vec<(Ablation, f64)>,
}

/// Runs the ablation study over the given workloads: per-workload
/// compilation and baselines in one pooled pass, then the flattened
/// (workload × variant) grid in a second.
pub fn ablate(names: &[&str], scale: Scale, seed: u64) -> Vec<AblationRow> {
    use hidisc::{DynamicConfig, Model};

    struct AblatePrep {
        name: &'static str,
        env: ExecEnv,
        compiled: Arc<CompiledWorkload>,
        no_cmas: Arc<CompiledWorkload>,
        base: MachineStats,
    }

    let prepared = pool::run_indexed(names.len(), |i| {
        let w = hidisc_workloads::by_name(names[i], scale, seed)
            .unwrap_or_else(|| panic!("unknown workload {}", names[i]));
        let env = env_of(&w);
        let compiled = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();
        let no_cmas = compile(
            &w.prog,
            &env,
            &CompilerConfig {
                enable_cmas: false,
                ..CompilerConfig::default()
            },
        )
        .unwrap();
        let base =
            hidisc::run_model(Model::Superscalar, &compiled, &env, MachineConfig::paper()).unwrap();
        AblatePrep {
            name: w.name,
            env,
            compiled: Arc::new(compiled),
            no_cmas: Arc::new(no_cmas),
            base,
        }
    });

    let variants = Ablation::all();
    let nv = variants.len();
    let cells = pool::run_indexed(prepared.len() * nv, |k| {
        let p = &prepared[k / nv];
        let a = variants[k % nv];
        let mut cfg = MachineConfig::paper();
        let c = match a {
            Ablation::Full => &p.compiled,
            Ablation::NoCmas => &p.no_cmas,
            Ablation::NextLineAssist => {
                cfg.cmp.next_line_assist = true;
                &p.compiled
            }
            Ablation::ScqDepth(d) => {
                cfg.queues.scq = d;
                &p.compiled
            }
            Ablation::WeakCmp => {
                cfg.cmp.issue_width = 1;
                cfg.cmp.thread_width = 1;
                cfg.cmp.mem_ports = 1;
                cfg.cmp.next_line_assist = false;
                &p.compiled
            }
            Ablation::Dynamic => {
                cfg.cmp.dynamic = DynamicConfig::all_on();
                &p.compiled
            }
        };
        let st = hidisc::run_model(Model::HiDisc, c, &p.env, cfg)
            .unwrap_or_else(|e| panic!("{} ablation {}: {e}", p.name, a.label()));
        assert_eq!(
            st.mem_checksum, p.base.mem_checksum,
            "{}: ablation diverged",
            p.name
        );
        (a, st.speedup_over(&p.base))
    });

    prepared
        .iter()
        .zip(cells.chunks(nv))
        .map(|(p, speedup)| AblationRow {
            name: p.name,
            speedup: speedup.to_vec(),
        })
        .collect()
}

/// [`Report`] for the ablation study (see [`ablate`]).
#[derive(Debug, Clone)]
pub struct AblationReport(pub Vec<AblationRow>);

impl Report for AblationReport {
    fn render_text(&self) -> String {
        let rows = &self.0;
        let mut out =
            String::from("Ablation study: HiDISC speed-up over the baseline superscalar\n");
        if let Some(first) = rows.first() {
            out.push_str(&format!("{:<34}", "variant"));
            for r in rows.iter() {
                out.push_str(&format!("{:>13}", r.name));
            }
            out.push('\n');
            for (i, (a, _)) in first.speedup.iter().enumerate() {
                out.push_str(&format!("{:<34}", a.label()));
                for r in rows.iter() {
                    out.push_str(&format!("{:>13.3}", r.speedup[i].1));
                }
                out.push('\n');
            }
        }
        out
    }

    fn render_csv(&self) -> String {
        let mut out = String::from("benchmark,variant,speedup\n");
        for r in &self.0 {
            for (a, s) in &r.speedup {
                out.push_str(&format!("{},{},{s:.6}\n", r.name, a.label()));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Inspection helpers behind `repro report` / `repro diag` / `repro trace`
// ---------------------------------------------------------------------------

/// The compiler's separation report (Figures 3/5-7 walkthrough) for one
/// suite workload.
pub fn separation_report(name: &str, scale: Scale, seed: u64) -> String {
    let w = hidisc_workloads::by_name(name, scale, seed)
        .unwrap_or_else(|| panic!("unknown workload {name}"));
    let env = env_of(&w);
    let c = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();
    hidisc_slicer::report::render(&c)
}

/// Per-cycle observer behind [`diagnostics`]: records live-machine peaks
/// that the end-of-run statistics cannot reconstruct — the high-water
/// mark of speculative CMP threads and the cycle it was first reached.
///
/// Bridged into [`Machine::run_observed`] through the closure blanket
/// impl of [`hidisc::Observer`] (which is exclusive — a concrete
/// `impl Observer for CmpPeakObserver` would overlap it), as
/// `|m: &Machine| obs.on_cycle(m).is_continue()`.
#[derive(Debug, Default)]
pub struct CmpPeakObserver {
    /// Highest live CMP thread count seen so far.
    pub peak_threads: usize,
    /// Cycle at which the peak was first reached.
    pub peak_cycle: u64,
}

impl CmpPeakObserver {
    /// The per-cycle hook, mirroring [`hidisc::Observer::on_cycle`].
    pub fn on_cycle(&mut self, m: &Machine) -> ControlFlow<()> {
        if let Some(t) = m.cmp_threads() {
            if t > self.peak_threads {
                self.peak_threads = t;
                self.peak_cycle = m.now();
            }
        }
        ControlFlow::Continue(())
    }
}

/// Runs every model on one workload and renders the machine-level
/// diagnostics (stall breakdowns, queue traffic, CMP behaviour). Each run
/// is observed cycle-by-cycle with a [`CmpPeakObserver`] so the report
/// includes live-occupancy peaks alongside the end-of-run counters.
pub fn diagnostics(name: &str, scale: Scale, seed: u64) -> String {
    use std::fmt::Write;
    let w = hidisc_workloads::by_name(name, scale, seed)
        .unwrap_or_else(|| panic!("unknown workload {name}"));
    let env = env_of(&w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default())
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
    let mut per_model = Vec::new();
    let mut peaks = Vec::new();
    let mut queue_peaks = Vec::new();
    // Queue-category telemetry feeds the peak-depth column; recording is
    // simulation-invisible (see the telemetry_equiv test in `hidisc`).
    let mut cfg = MachineConfig::paper();
    cfg.trace = TraceConfig {
        mask: Category::Queue.bit(),
        ..TraceConfig::OFF
    };
    for m in Model::ALL {
        let mut obs = CmpPeakObserver::default();
        let mut machine = Machine::new(m, &compiled, &env, cfg);
        let st = machine
            .run_observed(compiled.profile.dyn_instrs, |mach: &Machine| {
                obs.on_cycle(mach).is_continue()
            })
            .unwrap_or_else(|e| panic!("{} on {m}: {e}", w.name));
        per_model.push(st);
        peaks.push(obs);
        queue_peaks.push(machine.telemetry().queue_peaks());
    }
    check_models_agree(w.name, &per_model);
    let mut out = String::new();
    let base = &per_model[0];
    let _ = writeln!(
        out,
        "=== {} (work = {} dynamic instructions) ===",
        w.name, base.work_instrs
    );
    for ((st, peak), qp) in per_model.iter().zip(&peaks).zip(&queue_peaks) {
        let _ = writeln!(
            out,
            "\n{}: {} cycles, IPC {:.3}, L1 miss {:.2}%, speed-up {:.3}x",
            st.model,
            st.cycles,
            st.ipc(),
            100.0 * st.l1_miss_rate(),
            st.speedup_over(base)
        );
        for (n, cs) in &st.cores {
            let _ = writeln!(
                out,
                "  core {n:<12} committed {:>9}  lod {:>6}  q-stalls[LDQ,SDQ,CDQ,CQ,SCQ] {:?}  mem-dep {:>6}  mispred {:>6}",
                cs.committed, cs.lod_events, cs.dispatch_stall_q, cs.mem_dep_stalls, cs.mispredicts
            );
        }
        if let Some(c) = &st.cmp {
            let _ = writeln!(
                out,
                "  cmp  forks {} (dropped {})  instrs {}  prefetches {} (dropped {})  scq-block {}  done {}",
                c.forks, c.dropped_forks, c.instrs, c.prefetches, c.dropped_prefetches,
                c.scq_block_cycles, c.completed_threads
            );
            let _ = writeln!(
                out,
                "  cmp  peak live threads {} (cycle {})",
                peak.peak_threads, peak.peak_cycle
            );
        }
        let _ = writeln!(
            out,
            "  mem  useful-pref {}  late-pref {}  pref-accesses {}  mshr-rejects {}",
            st.mem.l1.useful_prefetch_hits,
            st.mem.l1.late_prefetch_hits,
            st.mem.l1.prefetch_accesses,
            st.mem.mshr_rejects
        );
        let q = &st.queues;
        let _ = writeln!(
            out,
            "  queues pushes/pops  LDQ {}/{}  SDQ {}/{}  CDQ {}/{}  CQ {}/{}  SCQ {}/{}",
            q[0].pushes,
            q[0].pops,
            q[1].pushes,
            q[1].pops,
            q[2].pushes,
            q[2].pops,
            q[3].pushes,
            q[3].pops,
            q[4].pushes,
            q[4].pops
        );
        let _ = writeln!(
            out,
            "  queues peak depth   LDQ {}  SDQ {}  CDQ {}  CQ {}  SCQ {}",
            qp[0], qp[1], qp[2], qp[3], qp[4]
        );
        // Cycles any core spent stalled popping (dispatch) or pushing
        // (commit) each queue, summed across the model's cores.
        let mut stall = [0u64; 5];
        for (_, cs) in &st.cores {
            for (acc, (d, c)) in stall
                .iter_mut()
                .zip(cs.dispatch_stall_q.iter().zip(&cs.commit_stall_q))
            {
                *acc += d + c;
            }
        }
        let _ = writeln!(
            out,
            "  queues stall cycles LDQ {}  SDQ {}  CDQ {}  CQ {}  SCQ {}",
            stall[0], stall[1], stall[2], stall[3], stall[4]
        );
    }
    out
}

/// Per-cycle observer behind [`pipeline_trace`]: renders one line per
/// cycle (the pipeline snapshot of every core plus the live CMP thread
/// count) and breaks — ending observation, not the simulation — after
/// `limit` cycles.
///
/// Bridged into [`Machine::run_observed`] through the closure blanket
/// impl of [`hidisc::Observer`], like [`CmpPeakObserver`].
#[derive(Debug)]
pub struct TraceObserver {
    out: String,
    limit: u64,
}

impl TraceObserver {
    /// A tracer that observes the first `limit` cycles.
    pub fn new(limit: u64) -> Self {
        TraceObserver {
            out: String::new(),
            limit,
        }
    }

    /// The per-cycle hook, mirroring [`hidisc::Observer::on_cycle`].
    pub fn on_cycle(&mut self, m: &Machine) -> ControlFlow<()> {
        use std::fmt::Write;
        let _ = write!(self.out, "cycle {:>6}", m.now());
        for s in m.snapshots() {
            let _ = write!(self.out, " | {s}");
        }
        if let Some(t) = m.cmp_threads() {
            let _ = write!(self.out, " | CMP threads {t}");
        }
        let _ = writeln!(self.out);
        if m.now() < self.limit {
            ControlFlow::Continue(())
        } else {
            ControlFlow::Break(())
        }
    }

    /// Closes the trace with the end-of-run summary line.
    pub fn finish(mut self, st: &MachineStats) -> String {
        use std::fmt::Write;
        let _ = writeln!(
            self.out,
            "... ran to completion in {} cycles (IPC {:.3})",
            st.cycles,
            st.ipc()
        );
        self.out
    }
}

/// Renders the first `cycles` cycles of a HiDISC run as a pipeline trace
/// (one line per cycle per core), behind `repro trace`.
pub fn pipeline_trace(name: &str, scale: Scale, seed: u64, cycles: u64) -> String {
    let w = hidisc_workloads::by_name(name, scale, seed)
        .unwrap_or_else(|| panic!("unknown workload {name}"));
    let env = env_of(&w);
    let c = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();
    let mut m = Machine::new(Model::HiDisc, &c, &env, MachineConfig::paper());
    let mut tracer = TraceObserver::new(cycles);
    let st = m
        .run_observed(c.profile.dyn_instrs, |mach: &Machine| {
            tracer.on_cycle(mach).is_continue()
        })
        .unwrap();
    tracer.finish(&st)
}

// ---------------------------------------------------------------------------
// Structured telemetry: Chrome-trace export and interval-metrics report
// ---------------------------------------------------------------------------

/// One traced HiDISC run behind `repro telemetry`: the Chrome-trace JSON
/// document plus enough bookkeeping to summarise what was recorded.
#[derive(Debug, Clone)]
pub struct TelemetryRun {
    /// Chrome-trace JSON (load into <https://ui.perfetto.dev>).
    pub json: String,
    /// End-of-run statistics of the traced machine.
    pub stats: MachineStats,
    /// Recorded events per category, in [`Category::ALL`] order.
    pub counts: [u64; 5],
    /// Events discarded once the recorder's buffer filled.
    pub dropped: u64,
    /// The buffer cap the run was recorded under.
    pub cap: usize,
    /// Interval metrics, when `trace.metrics_interval > 0`.
    pub metrics: Option<IntervalMetrics>,
}

impl TelemetryRun {
    /// One summary line per category plus the drop counter — the stderr
    /// companion of the JSON document.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (c, n) in Category::ALL.into_iter().zip(self.counts) {
            let _ = writeln!(out, "{:>9}: {n} events", c.name());
        }
        let _ = writeln!(out, "  dropped: {} (buffer cap {})", self.dropped, self.cap);
        out
    }
}

/// Runs one workload on the HiDISC model with the given trace
/// configuration and exports the recording as Chrome-trace JSON, with the
/// interval metrics (when sampled) embedded as the `hidiscMetrics` side
/// table.
pub fn telemetry_run(
    name: &str,
    scale: Scale,
    seed: u64,
    mut cfg: MachineConfig,
    trace: TraceConfig,
) -> TelemetryRun {
    let w = hidisc_workloads::by_name(name, scale, seed)
        .unwrap_or_else(|| panic!("unknown workload {name}"));
    let env = env_of(&w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default())
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
    cfg.trace = trace;
    let mut m = Machine::new(Model::HiDisc, &compiled, &env, cfg);
    let stats = m
        .run(compiled.profile.dyn_instrs)
        .unwrap_or_else(|e| panic!("{} traced run failed: {e}", w.name));
    let core_names: Vec<&str> = stats.cores.iter().map(|(n, _)| *n).collect();
    let mut sink = ChromeTraceSink::new(&core_names);
    let tel = m.telemetry();
    tel.replay(&mut sink);
    let mut counts = [0u64; 5];
    for e in tel.events() {
        counts[e.data.category() as usize] += 1;
    }
    TelemetryRun {
        json: sink.finish(tel.metrics()),
        stats,
        counts,
        dropped: tel.dropped(),
        cap: tel.config().event_cap,
        metrics: tel.metrics().cloned(),
    }
}

/// One streamed traced run behind `repro telemetry --stream`: the trace
/// went to the writer as the machine ran, so only the summary counters
/// remain here.
#[derive(Debug)]
pub struct StreamedRun<W> {
    /// The writer, returned after the document tail was flushed.
    pub out: W,
    /// End-of-run statistics of the traced machine.
    pub stats: MachineStats,
    /// Events serialised over the run (flushed batches + final drain).
    pub streamed_events: u64,
    /// Events discarded before a flush could happen (only possible when
    /// one cycle emits more than the whole buffer cap).
    pub dropped: u64,
    /// The buffer cap the run streamed under.
    pub cap: usize,
    /// Interval metrics, when `trace.metrics_interval > 0`.
    pub metrics: Option<IntervalMetrics>,
}

/// Streamed variant of [`telemetry_run`]: the Chrome-trace document is
/// serialised into `out` *while* the machine runs — the event buffer is
/// drained at half its cap instead of growing for the whole run, so
/// arbitrarily long traces stream in bounded memory. The bytes produced
/// are identical to the buffered exporter's.
pub fn telemetry_stream<W: std::io::Write>(
    name: &str,
    scale: Scale,
    seed: u64,
    mut cfg: MachineConfig,
    trace: TraceConfig,
    out: W,
) -> std::io::Result<StreamedRun<W>> {
    let w = hidisc_workloads::by_name(name, scale, seed)
        .unwrap_or_else(|| panic!("unknown workload {name}"));
    let env = env_of(&w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default())
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
    cfg.trace = trace;
    let mut m = Machine::new(Model::HiDisc, &compiled, &env, cfg);
    let core_names: Vec<&str> = m.snapshots().iter().map(|s| s.name).collect();
    let mut sink = StreamingSink::new(out, &core_names);
    let stats = m
        .run_streamed(compiled.profile.dyn_instrs, &mut sink)
        .unwrap_or_else(|e| panic!("{} streamed run failed: {e}", w.name));
    let tel = m.telemetry();
    let streamed_events = tel.total_events();
    let dropped = tel.dropped();
    let cap = tel.config().event_cap;
    let metrics = tel.metrics().cloned();
    let out = sink.finish(tel.metrics())?;
    Ok(StreamedRun {
        out,
        stats,
        streamed_events,
        dropped,
        cap,
        metrics,
    })
}

/// [`Report`] over the interval-metrics recorder: the text form is a
/// percentile summary per histogram, the CSV form is the raw sample
/// series for plotting.
#[derive(Debug, Clone)]
pub struct MetricsReport(pub IntervalMetrics);

impl Report for MetricsReport {
    fn render_text(&self) -> String {
        use std::fmt::Write;
        let m = &self.0;
        let mut out = format!(
            "interval metrics: {} sample(s) every {} cycles ({} dropped)\n",
            m.len(),
            m.interval,
            m.dropped()
        );
        let mut line = |name: &str, h: &hidisc::telemetry::Histogram| {
            let _ = writeln!(
                out,
                "{name:<22} count {:>8}  p50 {:>5}  p95 {:>5}  p99 {:>5}  max {:>5}",
                h.total(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max()
            );
        };
        line("miss latency (cycles)", &m.miss_latency);
        for (i, q) in hidisc_isa::Queue::ALL.into_iter().enumerate() {
            line(&format!("{} occupancy", q.name()), &m.queue_occupancy[i]);
        }
        line("MSHR occupancy", &m.mshr_occupancy);
        out
    }

    fn render_csv(&self) -> String {
        let mut out = String::from("cycle,committed,ldq,sdq,cdq,cq,scq,mshr,live_threads\n");
        for s in self.0.samples() {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                s.cycle,
                s.committed,
                s.queue_depth[0],
                s.queue_depth[1],
                s.queue_depth[2],
                s.queue_depth[3],
                s.queue_depth[4],
                s.mshr,
                s.live_threads
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Related-work comparison (paper §2): hardware and software prefetching
// ---------------------------------------------------------------------------

/// One row of the related-work comparison: cycles normalised to the plain
/// superscalar (higher = faster).
#[derive(Debug, Clone)]
pub struct RelatedRow {
    pub name: &'static str,
    /// Speed-up over the plain superscalar for:
    /// [RPT hardware prefetch, software prefetch, CP+CMP, HiDISC].
    pub speedup: [f64; 4],
}

/// Compares HiDISC against the two prefetching families of the paper's
/// Section 2: a Chen-Baer stride prefetcher (the paper's reference \[3\])
/// and Mowry-style compiler-inserted prefetching (reference \[9\]).
pub fn related_work(names: &[&str], scale: Scale, seed: u64) -> Vec<RelatedRow> {
    use hidisc_mem::RptConfig;
    use hidisc_slicer::swpref::insert_software_prefetch;

    names
        .iter()
        .map(|&name| {
            let w = hidisc_workloads::by_name(name, scale, seed)
                .unwrap_or_else(|| panic!("unknown workload {name}"));
            let env = env_of(&w);
            let compiled = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();

            let base =
                run_model(Model::Superscalar, &compiled, &env, MachineConfig::paper()).unwrap();

            // 1. superscalar + hardware stride prefetcher
            let mut hw_cfg = MachineConfig::paper();
            hw_cfg.superscalar.hw_prefetcher = Some(RptConfig::default());
            let hw = run_model(Model::Superscalar, &compiled, &env, hw_cfg).unwrap();
            assert_eq!(hw.mem_checksum, base.mem_checksum, "{name}: RPT diverged");

            // 2. superscalar running the software-prefetched binary
            let (sw_prog, _) = insert_software_prefetch(&w.prog, 8);
            let sw_compiled = compile(&sw_prog, &env, &CompilerConfig::default()).unwrap();
            let sw = run_model(
                Model::Superscalar,
                &sw_compiled,
                &env,
                MachineConfig::paper(),
            )
            .unwrap();
            assert_eq!(
                sw.mem_checksum, base.mem_checksum,
                "{name}: swpref diverged"
            );

            // 3 & 4. the paper's models
            let cp_cmp = run_model(Model::CpCmp, &compiled, &env, MachineConfig::paper()).unwrap();
            let hidisc = run_model(Model::HiDisc, &compiled, &env, MachineConfig::paper()).unwrap();

            let s = |v: &hidisc::MachineStats| base.cycles as f64 / v.cycles as f64;
            RelatedRow {
                name: w.name,
                speedup: [s(&hw), s(&sw), s(&cp_cmp), s(&hidisc)],
            }
        })
        .collect()
}

/// [`Report`] for the related-work comparison (see [`related_work`]).
#[derive(Debug, Clone)]
pub struct RelatedReport(pub Vec<RelatedRow>);

impl Report for RelatedReport {
    fn render_text(&self) -> String {
        let mut out = String::from(
            "Related-work comparison: speed-up over the plain superscalar\n\
             benchmark     HW-stride  SW-pref   CP+CMP   HiDISC\n",
        );
        for r in &self.0 {
            out.push_str(&format!(
                "{:<13} {:>9.3} {:>8.3} {:>8.3} {:>8.3}\n",
                r.name, r.speedup[0], r.speedup[1], r.speedup[2], r.speedup[3]
            ));
        }
        out
    }

    fn render_csv(&self) -> String {
        let mut out = String::from("benchmark,hw_stride,sw_pref,cp_cmp,hidisc\n");
        for r in &self.0 {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{:.6}\n",
                r.name, r.speedup[0], r.speedup[1], r.speedup[2], r.speedup[3]
            ));
        }
        out
    }
}

#[cfg(test)]
mod related_tests {
    use super::*;

    #[test]
    fn related_work_comparators_run_and_validate() {
        let rows = related_work(&["update", "dm"], Scale::Test, 5);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            for (i, s) in r.speedup.iter().enumerate() {
                assert!(*s > 0.5 && *s < 5.0, "{} variant {i} speedup {s}", r.name);
            }
        }
        let report = RelatedReport(rows);
        assert!(!report.render_text().is_empty());
        assert_eq!(report.render_csv().lines().count(), 1 + report.0.len());
    }
}

#[cfg(test)]
mod telemetry_tests {
    use super::*;

    #[test]
    fn telemetry_run_exports_and_summarises() {
        let trace = TraceConfig::ALL_EVENTS.with_metrics_interval(500);
        let run = telemetry_run("dm", Scale::Test, 7, MachineConfig::paper(), trace);
        assert!(run.json.starts_with("{\"displayTimeUnit\""));
        assert!(run.json.contains("\"hidiscMetrics\":"));
        assert!(run.counts[Category::Pipeline as usize] > 0);
        assert!(run.counts[Category::Queue as usize] > 0);
        assert!(
            run.counts[Category::Cmp as usize] > 0,
            "dm forks no threads?"
        );
        assert!(run.summary().contains("pipeline"));
        assert!(run.stats.cycles > 0);
        let rep = MetricsReport(run.metrics.expect("metrics sampled"));
        assert!(rep.render_text().contains("miss latency"));
        assert!(rep.render_csv().starts_with("cycle,committed,"));
        assert!(rep.render_csv().lines().count() > 1);
    }

    #[test]
    fn streamed_trace_is_byte_identical_to_the_buffered_export() {
        // Buffered: record everything, export at the end.
        let trace = TraceConfig::ALL_EVENTS.with_metrics_interval(500);
        let buffered = telemetry_run("dm", Scale::Test, 7, MachineConfig::paper(), trace);
        assert_eq!(buffered.dropped, 0, "cap too small for this workload");

        // Streamed: small cap so the buffer flushes many times mid-run
        // (a busy cycle can emit a few dozen events, so the half-cap
        // flush threshold must stay comfortably above that).
        let trace = trace.with_event_cap(1024);
        let streamed = telemetry_stream(
            "dm",
            Scale::Test,
            7,
            MachineConfig::paper(),
            trace,
            Vec::new(),
        )
        .expect("stream to a Vec cannot fail");
        assert_eq!(streamed.dropped, 0, "streaming must flush, not drop");
        assert!(
            streamed.streamed_events > 1024,
            "expected multiple flush batches"
        );
        assert!(streamed.stats.sim_eq(&buffered.stats), "runs diverged");
        assert_eq!(
            String::from_utf8(streamed.out).unwrap(),
            buffered.json,
            "streamed bytes differ from the buffered export"
        );
    }

    #[test]
    fn forced_event_drops_are_counted_and_surfaced() {
        // A buffered run with a tiny cap must drop events and say so in
        // the `repro telemetry` stderr summary.
        let trace = TraceConfig::ALL_EVENTS.with_event_cap(16);
        let run = telemetry_run("dm", Scale::Test, 7, MachineConfig::paper(), trace);
        assert!(run.dropped > 0, "a 16-event cap cannot hold a dm run");
        assert_eq!(run.cap, 16);
        assert!(
            run.summary()
                .contains(&format!("dropped: {} (buffer cap 16)", run.dropped)),
            "summary was: {}",
            run.summary()
        );
    }

    #[test]
    fn suite_speed_line_reports_both_clocks() {
        let (results, wall) = run_suite_timed(Scale::Test, 3, MachineConfig::paper());
        assert!(wall > 0);
        let line = suite_speed_line(&results, wall);
        assert!(line.starts_with("sim speed:"));
        assert!(line.contains("MSIPS aggregate"));
    }
}

#[cfg(test)]
mod observer_tests {
    use super::*;

    #[test]
    fn diagnostics_reports_queue_peaks_and_stalls() {
        let out = diagnostics("update", Scale::Test, 3);
        // New telemetry-sourced columns…
        assert!(out.contains("queues peak depth"));
        assert!(out.contains("queues stall cycles"));
        // …without disturbing the legacy layout.
        assert!(out.contains("queues pushes/pops"));
    }

    #[test]
    fn trace_observer_renders_and_stops() {
        let out = pipeline_trace("update", Scale::Test, 3, 10);
        assert!(out.starts_with("cycle"));
        assert!(out.contains("ran to completion"));
        // One line per observed cycle (10) plus the summary line.
        assert_eq!(out.lines().count(), 11);
    }

    #[test]
    fn diagnostics_reports_live_peaks() {
        let out = diagnostics("update", Scale::Test, 3);
        assert!(out.contains("=== update"));
        assert!(out.contains("peak live threads"));
    }
}
