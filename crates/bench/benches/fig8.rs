//! Criterion bench regenerating Figure 8 (per-benchmark speed-up over the
//! baseline superscalar) at test scale. The `repro` binary produces the
//! paper-scale table; this bench tracks the cost of the experiment itself
//! and sanity-checks its shape on every run.

use criterion::{criterion_group, criterion_main, Criterion};
use hidisc::MachineConfig;
use hidisc_bench::{fig8, run_suite};
use hidisc_workloads::Scale;

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("suite_speedups_test_scale", |b| {
        b.iter(|| {
            let results = run_suite(Scale::Test, 3, MachineConfig::paper());
            let rows = fig8(&results);
            assert_eq!(rows.len(), 7);
            rows
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
