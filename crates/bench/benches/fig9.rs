//! Criterion bench regenerating Figure 9 (relative L1 miss rate) at test
//! scale.

use criterion::{criterion_group, criterion_main, Criterion};
use hidisc::MachineConfig;
use hidisc_bench::{fig9, run_suite};
use hidisc_workloads::Scale;

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("suite_miss_ratios_test_scale", |b| {
        b.iter(|| {
            let results = run_suite(Scale::Test, 3, MachineConfig::paper());
            let rows = fig9(&results);
            assert_eq!(rows.len(), 7);
            rows
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
