//! Criterion bench regenerating Table 2 (average speed-up of the three
//! models) at test scale.

use criterion::{criterion_group, criterion_main, Criterion};
use hidisc::MachineConfig;
use hidisc_bench::{run_suite, table2};
use hidisc_workloads::Scale;

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("average_speedups_test_scale", |b| {
        b.iter(|| {
            let results = run_suite(Scale::Test, 3, MachineConfig::paper());
            let avg = table2(&results);
            assert!((avg[0] - 1.0).abs() < 1e-12);
            avg
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
