//! Criterion bench regenerating Figure 10 (latency-tolerance sweep) at
//! test scale for the paper's two benchmarks (Pointer, Neighborhood).

use criterion::{criterion_group, criterion_main, Criterion};
use hidisc_bench::fig10;
use hidisc_workloads::Scale;

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("latency_sweep_test_scale", |b| {
        b.iter(|| {
            let series = fig10(&["pointer", "neighborhood"], Scale::Test, 3);
            assert_eq!(series.len(), 2);
            series
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
