//! Simulator-throughput benchmarks: how many simulated cycles per second
//! each layer of the stack achieves. These measure the *simulator*, not
//! the simulated machine — useful for tracking performance regressions in
//! the hot pipeline loops.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hidisc::{Machine, MachineConfig, Model, Scheduler};
use hidisc_bench::env_of;
use hidisc_mem::{AccessKind, MemConfig, MemSystem};
use hidisc_slicer::{compile, CompilerConfig};
use hidisc_workloads::{by_name, Scale};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("simspeed");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("mem_system_accesses_10k", |b| {
        let mut sys = MemSystem::new(MemConfig::paper());
        let mut now = 0u64;
        b.iter(|| {
            for k in 0..10_000u64 {
                let addr = (k * 8) % (1 << 20);
                std::hint::black_box(sys.access(addr, AccessKind::Load, now));
                now += 1;
            }
        })
    });
    g.finish();
}

fn bench_machine(c: &mut Criterion) {
    let w = by_name("update", Scale::Test, 3).unwrap();
    let env = env_of(&w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();

    let mut g = c.benchmark_group("simspeed");
    g.sample_size(20);
    for model in [Model::Superscalar, Model::HiDisc] {
        g.bench_function(format!("machine_{model}_update"), |b| {
            b.iter(|| {
                let mut m = Machine::new(model, &compiled, &env, MachineConfig::paper());
                m.run(compiled.profile.dyn_instrs).unwrap()
            })
        });
    }
    // The seed scan scheduler on the commit-heavy case, as the reference
    // point for the ready-list speed-up (asserted bit-identical first).
    let scan_cfg = MachineConfig::builder()
        .scheduler(Scheduler::Scan)
        .build()
        .expect("paper preset with scan scheduler is valid");
    let run = |cfg: MachineConfig| {
        let mut m = Machine::new(Model::Superscalar, &compiled, &env, cfg);
        m.run(compiled.profile.dyn_instrs).unwrap()
    };
    assert!(
        run(scan_cfg).sim_eq(&run(MachineConfig::paper())),
        "scan and ready-list schedulers diverged on update"
    );
    g.bench_function("machine_Superscalar_update_scan", |b| {
        b.iter(|| run(scan_cfg))
    });
    g.finish();
}

/// The fast-forward payoff case: a memory-bound serial pointer chase,
/// both at the Table-1 latencies and at the paper's Figure-10 high-memory
/// point (l2 16 / mem 160), where stall windows are longest. The
/// event-driven jump must cut simulation time while producing bit-identical
/// statistics (asserted here before timing starts).
fn bench_fast_forward(c: &mut Criterion) {
    let w = by_name("pointer", Scale::Test, 3).unwrap();
    let env = env_of(&w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();

    let run = |base: MachineConfig, ff: bool| {
        let mut cfg = base;
        cfg.fast_forward = ff;
        let mut m = Machine::new(Model::Superscalar, &compiled, &env, cfg);
        m.run(compiled.profile.dyn_instrs).unwrap()
    };

    let mut g = c.benchmark_group("simspeed");
    g.sample_size(20);
    for (tag, base) in [
        ("", MachineConfig::paper()),
        ("_f10", MachineConfig::paper_with_latency(16, 160)),
    ] {
        let reference = run(base, false);
        assert!(
            reference.sim_eq(&run(base, true)),
            "fast-forward diverged on pointer{tag}"
        );
        for (state, ff) in [("off", false), ("on", true)] {
            g.bench_function(format!("machine_pointer{tag}_ff_{state}"), |b| {
                b.iter(|| run(base, ff))
            });
        }
    }
    g.finish();
}

/// Telemetry overhead check: the disabled path must cost nothing (it is
/// one untaken branch per emission site) and full recording bounds the
/// worst case. Both runs are asserted statistics-identical to each other
/// before timing starts — telemetry may never perturb the simulation.
fn bench_telemetry(c: &mut Criterion) {
    use hidisc::telemetry::TraceConfig;
    let w = by_name("update", Scale::Test, 3).unwrap();
    let env = env_of(&w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();

    let run = |trace: TraceConfig| {
        let mut cfg = MachineConfig::paper();
        cfg.trace = trace;
        let mut m = Machine::new(Model::HiDisc, &compiled, &env, cfg);
        m.run(compiled.profile.dyn_instrs).unwrap()
    };
    let full = TraceConfig::ALL_EVENTS.with_metrics_interval(1000);
    assert!(
        run(TraceConfig::OFF).sim_eq(&run(full)),
        "telemetry perturbed the simulation on update"
    );

    let mut g = c.benchmark_group("simspeed");
    g.sample_size(20);
    for (tag, trace) in [("off", TraceConfig::OFF), ("full", full)] {
        g.bench_function(format!("machine_HiDisc_update_telemetry_{tag}"), |b| {
            b.iter(|| run(trace))
        });
    }
    g.finish();
}

fn bench_compiler(c: &mut Criterion) {
    let w = by_name("tc", Scale::Test, 3).unwrap();
    let env = env_of(&w);
    let mut g = c.benchmark_group("simspeed");
    g.bench_function("compile_tc_test", |b| {
        b.iter(|| compile(&w.prog, &env, &CompilerConfig::default()).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_machine,
    bench_fast_forward,
    bench_telemetry,
    bench_compiler
);
criterion_main!(benches);
