//! # hidisc-sweep — batch sweep planner
//!
//! The serve stack evaluates one `(config, workload, model)` point per
//! `POST /v1/run`; the paper's headline artifacts (fig8/fig9/fig10,
//! table 1) are *grids* of such points. This crate is the planner behind
//! `POST /v1/sweep`: it expands a parameter grid into deduplicated,
//! content-addressed jobs, derives an order-independent sweep id from
//! the expanded point set, and re-assembles figure/table CSV from
//! completed points via `hidisc-bench`'s [`Report`] types.
//!
//! Three properties carry the design:
//!
//! * **Shared content addressing.** [`job_key`]/[`warm_job_key`] and
//!   [`build_config`] are the single source of truth for how a point
//!   maps onto a job id — `hidisc-serve`'s `JobSpec` delegates here, so
//!   a sweep point and an equivalent `/v1/run` request hash to the same
//!   key and share cache entries (and warm-start checkpoints).
//! * **Order-independent identity.** [`sweep_id`] hashes the *sorted*
//!   deduplicated key set, so the same grid written with axes in a
//!   different order names the same sweep and coalesces server-side.
//! * **Byte-identical rendering.** [`render_csv`] rebuilds report inputs
//!   with [`MachineStats::minimal`] and renders through the same
//!   `hidisc-bench` report types the `repro` CLI uses — same `f64`
//!   arithmetic, same formatting — so a sweep-rendered figure compares
//!   byte-for-byte (`cmp`) against `repro --format csv` output.

#![forbid(unsafe_code)]

use hidisc::telemetry::TraceConfig;
use hidisc::{fnv1a, ConfigError, MachineConfig, MachineStats, Model, Scheduler, FNV_OFFSET};
use hidisc_bench::{
    fig8, fig9, Fig10Report, Fig10Series, Fig8Report, Fig9Report, Report, SuiteResult,
    Table1Report, FIG10_LATENCIES,
};
use hidisc_workloads::Scale;
use std::collections::HashSet;

/// Upper bound on expanded points per sweep. Large enough for every
/// paper grid (fig10 is 2 workloads x 4 latencies x 4 models = 32) with
/// two orders of magnitude of headroom; small enough that a single
/// request cannot queue unbounded work.
pub const MAX_POINTS: usize = 4096;

// ---------------------------------------------------------------------
// Shared content addressing
// ---------------------------------------------------------------------

/// Assembles a machine configuration from the per-point overrides, with
/// paper values where absent — the single builder path shared by
/// `/v1/run`, `/v1/sweep` and the `repro` CLI figure commands, so that
/// "no overrides" hashes identically everywhere.
pub fn build_config(
    l2_lat: Option<u32>,
    mem_lat: Option<u32>,
    scq_depth: Option<usize>,
    scheduler: Option<Scheduler>,
    max_cycles: Option<u64>,
    metrics_interval: u64,
) -> Result<MachineConfig, ConfigError> {
    let paper = MachineConfig::paper();
    let mut b = MachineConfig::builder().latency(
        l2_lat.unwrap_or(paper.mem.l2.latency),
        mem_lat.unwrap_or(paper.mem.mem_latency),
    );
    if let Some(depth) = scq_depth {
        let mut q = paper.queues;
        q.scq = depth;
        b = b.queues(q);
    }
    if let Some(s) = scheduler {
        b = b.scheduler(s);
    }
    if let Some(n) = max_cycles {
        b = b.max_cycles(n);
    }
    if metrics_interval > 0 {
        b = b.trace(TraceConfig::OFF.with_metrics_interval(metrics_interval));
    }
    b.build()
}

/// Extends a hash seed with the workload identity (name, scale, seed),
/// the model, and — domain-separated — an optional custom program.
fn extend_key(
    mut h: u64,
    workload: &str,
    scale: Scale,
    seed: u64,
    model: Model,
    program: Option<&str>,
) -> u64 {
    h = fnv1a(h, workload.as_bytes());
    h = fnv1a(h, &[0, scale as u8]);
    h = fnv1a(h, &seed.to_le_bytes());
    h = fnv1a(h, &[model as u8]);
    if let Some(p) = program {
        // Domain-separate custom programs from named workloads that
        // happen to share a label.
        h = fnv1a(h, &[1]);
        h = fnv1a(h, p.as_bytes());
    }
    h
}

/// The job's content-address: the config's canonical hash extended with
/// the workload identity and the model. Telemetry settings and the
/// wall-clock timeout are deliberately excluded — they do not change
/// simulated results (the cycle budget, part of the config, is
/// included).
pub fn job_key(
    cfg: &MachineConfig,
    workload: &str,
    scale: Scale,
    seed: u64,
    model: Model,
    program: Option<&str>,
) -> u64 {
    extend_key(cfg.canonical_hash(), workload, scale, seed, model, program)
}

/// The warm-start address: like [`job_key`] but seeded from
/// [`MachineConfig::warm_hash`], which normalises the cycle and deadlock
/// budgets away. Budgets only decide where a run *stops*, not how state
/// *evolves*, so two jobs differing only in budgets share the same
/// simulated prefix — and the same checkpoint.
pub fn warm_job_key(
    cfg: &MachineConfig,
    workload: &str,
    scale: Scale,
    seed: u64,
    model: Model,
    program: Option<&str>,
) -> u64 {
    extend_key(cfg.warm_hash(), workload, scale, seed, model, program)
}

/// The order-independent sweep identity: an FNV-1a fold over the
/// *sorted, deduplicated* point-key set under a domain-separation tag.
/// Axis order, point order and duplicate points cannot change it.
pub fn sweep_id(keys: &[u64]) -> u64 {
    let mut sorted = keys.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut h = fnv1a(FNV_OFFSET, b"hidisc-sweep-v1");
    for k in &sorted {
        h = fnv1a(h, &k.to_le_bytes());
    }
    h
}

// ---------------------------------------------------------------------
// Grids and expansion
// ---------------------------------------------------------------------

/// A parameter grid: the cartesian product of its axes. Every axis but
/// `workloads` has a default (see [`Grid::default`]); override axes are
/// `Option`-valued with `None` meaning the paper configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// Workload names (required, non-empty).
    pub workloads: Vec<String>,
    /// Models to evaluate; defaults to all four.
    pub models: Vec<Model>,
    /// Problem scales; defaults to `[test]`.
    pub scales: Vec<Scale>,
    /// Workload seeds; defaults to `[2003]` (the CLI default).
    pub seeds: Vec<u64>,
    /// Paired `(l2, mem)` latency points — paired, not a product, so the
    /// fig10 sweep is 4 points, not 16. `None` = paper latencies.
    pub latencies: Vec<Option<(u32, u32)>>,
    /// SCQ depth overrides; `None` = paper depth.
    pub scq_depths: Vec<Option<usize>>,
    /// Issue-scheduler overrides; `None` = paper scheduler.
    pub schedulers: Vec<Option<Scheduler>>,
    /// Per-point cycle budget, applied to every point (scalar, not an
    /// axis: budgets bound the grid, they are not an experiment axis).
    pub max_cycles: Option<u64>,
}

impl Default for Grid {
    fn default() -> Grid {
        Grid {
            workloads: Vec::new(),
            models: Model::ALL.to_vec(),
            scales: vec![Scale::Test],
            seeds: vec![2003],
            latencies: vec![None],
            scq_depths: vec![None],
            schedulers: vec![None],
            max_cycles: None,
        }
    }
}

/// One expanded grid point (before hashing).
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    pub workload: String,
    pub scale: Scale,
    pub seed: u64,
    pub model: Model,
    pub latency: Option<(u32, u32)>,
    pub scq_depth: Option<usize>,
    pub scheduler: Option<Scheduler>,
    pub max_cycles: Option<u64>,
}

impl Point {
    /// The point's machine configuration, through the validating builder.
    pub fn config(&self) -> Result<MachineConfig, ConfigError> {
        build_config(
            self.latency.map(|(l2, _)| l2),
            self.latency.map(|(_, mem)| mem),
            self.scq_depth,
            self.scheduler,
            self.max_cycles,
            0,
        )
    }

    /// True when two points differ at most in the model axis — the
    /// grouping figure assembly relies on (a figure compares models of
    /// one otherwise-identical experiment).
    fn same_experiment(&self, other: &Point) -> bool {
        self.workload == other.workload
            && self.scale == other.scale
            && self.seed == other.seed
            && self.latency == other.latency
            && self.scq_depth == other.scq_depth
            && self.scheduler == other.scheduler
            && self.max_cycles == other.max_cycles
    }
}

/// A planned point: the grid point, its validated configuration and its
/// content-address.
#[derive(Debug, Clone)]
pub struct PlannedPoint {
    pub point: Point,
    pub cfg: MachineConfig,
    pub key: u64,
}

/// A planned sweep: deduplicated points in deterministic expansion
/// order (workload-major, model innermost) and the order-independent
/// sweep id.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Order-independent identity of the point set (see [`sweep_id`]).
    pub id: u64,
    /// Unique points, first occurrence kept, in expansion order.
    pub points: Vec<PlannedPoint>,
    /// How many expanded points were dropped as duplicates.
    pub duplicates: usize,
}

/// Expands a grid into a deduplicated, content-addressed [`Plan`].
///
/// Expansion order is workload-major with the model axis innermost, so
/// each workload's model block is contiguous and workloads appear in the
/// request's order — a grid listing the suite in presentation order
/// renders figures in presentation order. Errors (unknown workload,
/// empty axis, invalid configuration, too many points) are returned as
/// the same diagnostics `repro`'s flag validation would print.
pub fn plan(grid: &Grid) -> Result<Plan, String> {
    if grid.workloads.is_empty() {
        return Err("grid has no workloads (field `workloads` must be a non-empty array)".into());
    }
    for w in &grid.workloads {
        if !hidisc_workloads::names().contains(&w.as_str()) {
            return Err(format!(
                "unknown workload `{w}` (use {})",
                hidisc_workloads::names().join("|")
            ));
        }
    }
    for (axis, len) in [
        ("models", grid.models.len()),
        ("scales", grid.scales.len()),
        ("seeds", grid.seeds.len()),
        ("latencies", grid.latencies.len()),
        ("scq_depths", grid.scq_depths.len()),
        ("schedulers", grid.schedulers.len()),
    ] {
        if len == 0 {
            return Err(format!(
                "axis `{axis}` is empty (omit it to use the default)"
            ));
        }
    }
    let total = [
        grid.workloads.len(),
        grid.models.len(),
        grid.scales.len(),
        grid.seeds.len(),
        grid.latencies.len(),
        grid.scq_depths.len(),
        grid.schedulers.len(),
    ]
    .iter()
    .try_fold(1usize, |acc, &n| {
        acc.checked_mul(n).filter(|&t| t <= MAX_POINTS)
    })
    .ok_or_else(|| format!("grid expands to more than {MAX_POINTS} points"))?;
    debug_assert!(total <= MAX_POINTS);

    let mut points = Vec::with_capacity(total);
    let mut seen = HashSet::with_capacity(total);
    let mut duplicates = 0;
    for workload in &grid.workloads {
        for &latency in &grid.latencies {
            for &scq_depth in &grid.scq_depths {
                for &scheduler in &grid.schedulers {
                    for &scale in &grid.scales {
                        for &seed in &grid.seeds {
                            for &model in &grid.models {
                                let point = Point {
                                    workload: workload.clone(),
                                    scale,
                                    seed,
                                    model,
                                    latency,
                                    scq_depth,
                                    scheduler,
                                    max_cycles: grid.max_cycles,
                                };
                                let cfg = point.config().map_err(|e| e.to_string())?;
                                let key = job_key(
                                    &cfg,
                                    &point.workload,
                                    point.scale,
                                    point.seed,
                                    point.model,
                                    None,
                                );
                                if seen.insert(key) {
                                    points.push(PlannedPoint { point, cfg, key });
                                } else {
                                    duplicates += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    let keys: Vec<u64> = points.iter().map(|p| p.key).collect();
    Ok(Plan {
        id: sweep_id(&keys),
        points,
        duplicates,
    })
}

// ---------------------------------------------------------------------
// Figure assembly from completed points
// ---------------------------------------------------------------------

/// Which artifact to assemble from the completed point set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Render {
    Fig8,
    Fig9,
    Fig10,
    Table1,
}

impl Render {
    /// All render targets, for diagnostics.
    pub const ALL: [Render; 4] = [Render::Fig8, Render::Fig9, Render::Fig10, Render::Table1];

    /// The wire/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Render::Fig8 => "fig8",
            Render::Fig9 => "fig9",
            Render::Fig10 => "fig10",
            Render::Table1 => "table1",
        }
    }

    /// Parses a wire/CLI name.
    pub fn parse(s: &str) -> Result<Render, String> {
        Render::ALL
            .into_iter()
            .find(|r| r.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = Render::ALL.iter().map(|r| r.name()).collect();
                format!("unknown render target `{s}` (use {})", names.join("|"))
            })
    }
}

/// The per-point measures figure assembly needs, as parsed back from a
/// completed job's serialised stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointStats {
    pub cycles: u64,
    pub work_instrs: u64,
    pub l1_demand_accesses: u64,
    pub l1_demand_misses: u64,
}

impl PointStats {
    /// Rebuilds a [`MachineStats`] carrying exactly these measures.
    pub fn to_machine_stats(self, model: Model) -> MachineStats {
        MachineStats::minimal(
            model,
            self.cycles,
            self.work_instrs,
            self.l1_demand_accesses,
            self.l1_demand_misses,
        )
    }
}

/// The workload's interned suite name (figure reports carry `&'static
/// str` names; every planned point passed validation against this list).
fn static_name(workload: &str) -> Result<&'static str, String> {
    hidisc_workloads::names()
        .iter()
        .find(|n| **n == workload)
        .copied()
        .ok_or_else(|| format!("unknown workload `{workload}`"))
}

/// Workloads in first-appearance order with the indices of their points.
fn group_by_workload(points: &[PlannedPoint]) -> Vec<(&str, Vec<usize>)> {
    let mut groups: Vec<(&str, Vec<usize>)> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        match groups.iter_mut().find(|(w, _)| *w == p.point.workload) {
            Some((_, idx)) => idx.push(i),
            None => groups.push((&p.point.workload, vec![i])),
        }
    }
    groups
}

/// Rebuilds fig8/fig9 inputs: one [`SuiteResult`] per workload, models
/// in [`Model::ALL`] order. Requires exactly one point per
/// `(workload, model)` and a single experiment per workload.
fn suites(points: &[PlannedPoint], stats: &[PointStats]) -> Result<Vec<SuiteResult>, String> {
    let mut out = Vec::new();
    for (workload, idx) in group_by_workload(points) {
        if idx.len() != Model::ALL.len() {
            return Err(format!(
                "figure rendering needs exactly one point per (workload, model); \
                 `{workload}` has {} points (narrow the grid or drop `render`)",
                idx.len()
            ));
        }
        let first = &points[idx[0]].point;
        if let Some(&i) = idx
            .iter()
            .find(|&&i| !points[i].point.same_experiment(first))
        {
            return Err(format!(
                "figure rendering compares models of one experiment; `{workload}` \
                 points differ beyond the model axis (e.g. point {:016x})",
                points[i].key
            ));
        }
        let mut per_model = Vec::with_capacity(Model::ALL.len());
        for model in Model::ALL {
            let &i = idx
                .iter()
                .find(|&&i| points[i].point.model == model)
                .ok_or_else(|| {
                    format!(
                        "figure rendering needs model `{}` for `{workload}`",
                        model.name()
                    )
                })?;
            per_model.push(stats[i].to_machine_stats(model));
        }
        out.push(SuiteResult {
            name: static_name(workload)?,
            per_model,
        });
    }
    Ok(out)
}

/// Rebuilds fig10 input: each workload must cover exactly
/// [`FIG10_LATENCIES`] x [`Model::ALL`].
fn fig10_series(points: &[PlannedPoint], stats: &[PointStats]) -> Result<Vec<Fig10Series>, String> {
    let mut out = Vec::new();
    for (workload, idx) in group_by_workload(points) {
        let want = FIG10_LATENCIES.len() * Model::ALL.len();
        if idx.len() != want {
            return Err(format!(
                "fig10 rendering needs exactly the {} latency x model points per workload; \
                 `{workload}` has {}",
                want,
                idx.len()
            ));
        }
        let mut ipc = Vec::with_capacity(FIG10_LATENCIES.len());
        for (l2, mem) in FIG10_LATENCIES {
            let mut row = [0.0; 4];
            for (mi, model) in Model::ALL.into_iter().enumerate() {
                let &i = idx
                    .iter()
                    .find(|&&i| {
                        let p = &points[i].point;
                        p.model == model && p.latency == Some((l2, mem))
                    })
                    .ok_or_else(|| {
                        format!(
                            "fig10 rendering needs latency {l2}/{mem} for `{workload}` \
                             on `{}` (use the fig10 latency axis)",
                            model.name()
                        )
                    })?;
                row[mi] = stats[i].to_machine_stats(model).ipc();
            }
            ipc.push(row);
        }
        out.push(Fig10Series {
            name: static_name(workload)?,
            ipc,
        });
    }
    Ok(out)
}

/// Assembles the requested artifact as CSV from the completed point set.
/// `stats[i]` must correspond to `points[i]`. Rendering goes through the
/// same `hidisc-bench` [`Report`] types as the `repro` CLI, so output is
/// byte-identical to `repro --format csv`.
pub fn render_csv(
    render: Render,
    points: &[PlannedPoint],
    stats: &[PointStats],
) -> Result<String, String> {
    if points.is_empty() {
        return Err("nothing to render: the sweep has no points".into());
    }
    if points.len() != stats.len() {
        return Err(format!(
            "render needs stats for every point ({} points, {} stats)",
            points.len(),
            stats.len()
        ));
    }
    match render {
        Render::Fig8 => Ok(Fig8Report(fig8(&suites(points, stats)?)).render_csv()),
        Render::Fig9 => Ok(Fig9Report(fig9(&suites(points, stats)?)).render_csv()),
        Render::Fig10 => Ok(Fig10Report(fig10_series(points, stats)?).render_csv()),
        Render::Table1 => Ok(Table1Report(points[0].cfg).render_csv()),
    }
}

/// The fig8/fig9/table-ready grid over the paper suite: every workload
/// in presentation order, all four models, one configuration.
pub fn paper_suite_grid(scale: Scale, seed: u64) -> Grid {
    Grid {
        workloads: hidisc_workloads::suite(Scale::Test, 0)
            .into_iter()
            .map(|w| w.name.to_string())
            .collect(),
        scales: vec![scale],
        seeds: vec![seed],
        ..Grid::default()
    }
}

/// The fig10 grid: the paper's two latency-tolerance workloads across
/// [`FIG10_LATENCIES`].
pub fn fig10_grid(scale: Scale, seed: u64) -> Grid {
    Grid {
        workloads: vec!["pointer".into(), "neighborhood".into()],
        scales: vec![scale],
        seeds: vec![seed],
        latencies: FIG10_LATENCIES.iter().map(|&p| Some(p)).collect(),
        ..Grid::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(workloads: &[&str]) -> Grid {
        Grid {
            workloads: workloads.iter().map(|w| w.to_string()).collect(),
            ..Grid::default()
        }
    }

    #[test]
    fn expansion_is_workload_major_with_models_innermost() {
        let p = plan(&grid(&["dm", "pointer"])).unwrap();
        assert_eq!(p.points.len(), 8);
        assert_eq!(p.duplicates, 0);
        let labels: Vec<(String, Model)> = p
            .points
            .iter()
            .map(|pp| (pp.point.workload.clone(), pp.point.model))
            .collect();
        let mut want = Vec::new();
        for w in ["dm", "pointer"] {
            for m in Model::ALL {
                want.push((w.to_string(), m));
            }
        }
        assert_eq!(labels, want);
    }

    #[test]
    fn duplicate_points_are_dropped_keeping_first() {
        let once = plan(&grid(&["dm"])).unwrap();
        let twice = plan(&grid(&["dm", "dm"])).unwrap();
        assert_eq!(twice.points.len(), once.points.len());
        assert_eq!(twice.duplicates, once.points.len());
        assert_eq!(twice.id, once.id);
    }

    #[test]
    fn sweep_id_ignores_order_and_duplicates() {
        let keys = [3u64, 1, 2];
        let id = sweep_id(&keys);
        assert_eq!(id, sweep_id(&[1, 2, 3]));
        assert_eq!(id, sweep_id(&[2, 3, 1, 1, 2]));
        assert_ne!(id, sweep_id(&[1, 2]));
        assert_ne!(id, sweep_id(&[]));
    }

    #[test]
    fn explicit_paper_values_hash_like_defaults() {
        // None and Some(paper value) build the same config, so the
        // planner's dedup also collapses them onto one point.
        let paper = MachineConfig::paper();
        let mut g = grid(&["dm"]);
        g.latencies = vec![None, Some((paper.mem.l2.latency, paper.mem.mem_latency))];
        let p = plan(&g).unwrap();
        assert_eq!(p.points.len(), 4);
        assert_eq!(p.duplicates, 4);
        assert_eq!(p.id, plan(&grid(&["dm"])).unwrap().id);
    }

    #[test]
    fn planner_rejects_bad_grids() {
        assert!(plan(&grid(&[])).unwrap_err().contains("no workloads"));
        assert!(plan(&grid(&["nope"]))
            .unwrap_err()
            .contains("unknown workload"));
        let mut empty_axis = grid(&["dm"]);
        empty_axis.seeds.clear();
        assert!(plan(&empty_axis).unwrap_err().contains("`seeds` is empty"));
        let mut huge = grid(&["dm"]);
        huge.seeds = (0..2048).collect();
        assert!(plan(&huge).unwrap_err().contains("more than"));
        let mut bad_cfg = grid(&["dm"]);
        bad_cfg.scq_depths = vec![Some(0)];
        assert!(plan(&bad_cfg).is_err());
    }

    #[test]
    fn job_key_matches_the_run_endpoint_contract() {
        // Golden structure: changing any identity axis changes the key;
        // the warm key differs only through the config hash family.
        let cfg = build_config(None, None, None, None, None, 0).unwrap();
        let base = job_key(&cfg, "dm", Scale::Test, 2003, Model::HiDisc, None);
        assert_ne!(
            base,
            job_key(&cfg, "tc", Scale::Test, 2003, Model::HiDisc, None)
        );
        assert_ne!(
            base,
            job_key(&cfg, "dm", Scale::Paper, 2003, Model::HiDisc, None)
        );
        assert_ne!(
            base,
            job_key(&cfg, "dm", Scale::Test, 7, Model::HiDisc, None)
        );
        assert_ne!(
            base,
            job_key(&cfg, "dm", Scale::Test, 2003, Model::CpAp, None)
        );
        assert_ne!(
            base,
            job_key(&cfg, "dm", Scale::Test, 2003, Model::HiDisc, Some("nop"))
        );
        assert_eq!(
            base,
            job_key(&cfg, "dm", Scale::Test, 2003, Model::HiDisc, None)
        );
        assert_ne!(
            warm_job_key(&cfg, "dm", Scale::Test, 2003, Model::HiDisc, None),
            base
        );
    }

    #[test]
    fn render_rebuilds_fig8_csv_from_minimal_stats() {
        let p = plan(&grid(&["dm"])).unwrap();
        // Synthetic measures: model i finishes in fewer cycles.
        let stats: Vec<PointStats> = (0..4)
            .map(|i| PointStats {
                cycles: 1000 - 100 * i,
                work_instrs: 500,
                l1_demand_accesses: 100,
                l1_demand_misses: 10 - i,
            })
            .collect();
        let csv = render_csv(Render::Fig8, &p.points, &stats).unwrap();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "benchmark,superscalar,cp_ap,cp_cmp,hidisc"
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("dm,1.000000,"), "{row}");
        let fig9 = render_csv(Render::Fig9, &p.points, &stats).unwrap();
        assert!(fig9.starts_with("benchmark,base_miss_rate,"), "{fig9}");
        let table1 = render_csv(Render::Table1, &p.points, &stats).unwrap();
        assert!(table1.contains("L2 latency"), "{table1}");
    }

    #[test]
    fn render_fig10_requires_the_latency_axis() {
        let p = plan(&fig10_grid(Scale::Test, 2003)).unwrap();
        assert_eq!(p.points.len(), 32);
        let stats: Vec<PointStats> = (0..32)
            .map(|i| PointStats {
                cycles: 1000 + i,
                work_instrs: 500,
                l1_demand_accesses: 100,
                l1_demand_misses: 5,
            })
            .collect();
        let csv = render_csv(Render::Fig10, &p.points, &stats).unwrap();
        assert!(
            csv.starts_with("benchmark,l2_latency,mem_latency,"),
            "{csv}"
        );
        assert_eq!(csv.lines().count(), 1 + 8);
        // A grid without the latency axis cannot render fig10.
        let flat = plan(&grid(&["pointer"])).unwrap();
        assert!(render_csv(Render::Fig10, &flat.points, &stats[..4]).is_err());
    }

    #[test]
    fn render_validates_shape() {
        let p = plan(&grid(&["dm"])).unwrap();
        let stats = vec![
            PointStats {
                cycles: 1,
                work_instrs: 1,
                l1_demand_accesses: 0,
                l1_demand_misses: 0,
            };
            3
        ];
        assert!(render_csv(Render::Fig8, &p.points, &stats).is_err());
        assert!(render_csv(Render::Fig8, &[], &[]).is_err());
        let mut partial = plan(&grid(&["dm"])).unwrap();
        partial.points.truncate(3);
        let err = render_csv(Render::Fig8, &partial.points, &stats).unwrap_err();
        assert!(err.contains("one point per"), "{err}");
    }
}
