//! Property tests for grid expansion: across randomly shaped grids,
//! expansion is deterministic, the planned point set is duplicate-free,
//! and the sweep id is insensitive to axis order and duplicate entries.

use hidisc::Scheduler;
use hidisc_sweep::{plan, Grid};
use proptest::prelude::*;

/// Random small grids over a fixed workload pool. Axes deliberately
/// allow repeated entries so the duplicate-dropping path is exercised.
fn grid_strategy() -> impl Strategy<Value = Grid> {
    let workloads = prop::collection::vec(
        prop_oneof![Just("dm"), Just("pointer"), Just("tc"), Just("field")],
        1..4,
    );
    let seeds = prop::collection::vec(2000u64..2004, 1..3);
    let latencies = prop::collection::vec(
        prop_oneof![
            Just(None::<(u32, u32)>),
            Just(Some((4, 40))),
            Just(Some((8, 80))),
        ],
        1..3,
    );
    let scq_depths = prop_oneof![
        Just(vec![None::<usize>]),
        Just(vec![Some(8)]),
        Just(vec![None, Some(16)]),
    ];
    let schedulers = prop_oneof![
        Just(vec![None::<Scheduler>]),
        Just(vec![Some(Scheduler::Scan)]),
        Just(vec![None, Some(Scheduler::Scan)]),
    ];
    (workloads, seeds, latencies, scq_depths, schedulers).prop_map(
        |(workloads, seeds, latencies, scq_depths, schedulers)| Grid {
            workloads: workloads.into_iter().map(String::from).collect(),
            seeds,
            latencies,
            scq_depths,
            schedulers,
            ..Grid::default()
        },
    )
}

/// The grid with every axis reversed: a different written order for the
/// same cartesian product.
fn reversed(grid: &Grid) -> Grid {
    let mut g = grid.clone();
    g.workloads.reverse();
    g.models.reverse();
    g.scales.reverse();
    g.seeds.reverse();
    g.latencies.reverse();
    g.scq_depths.reverse();
    g.schedulers.reverse();
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn expansion_is_deterministic(grid in grid_strategy()) {
        let a = plan(&grid).unwrap();
        let b = plan(&grid).unwrap();
        prop_assert_eq!(a.id, b.id);
        prop_assert_eq!(a.points.len(), b.points.len());
        prop_assert_eq!(a.duplicates, b.duplicates);
        for (x, y) in a.points.iter().zip(&b.points) {
            prop_assert_eq!(x.key, y.key);
            prop_assert_eq!(&x.point, &y.point);
        }
    }

    #[test]
    fn planned_points_are_duplicate_free(grid in grid_strategy()) {
        let p = plan(&grid).unwrap();
        let mut keys: Vec<u64> = p.points.iter().map(|pp| pp.key).collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), before);
    }

    #[test]
    fn sweep_id_is_axis_order_insensitive(grid in grid_strategy()) {
        let a = plan(&grid).unwrap();
        let b = plan(&reversed(&grid)).unwrap();
        prop_assert_eq!(a.id, b.id);
        // Same point *set* too, not just the same id.
        let mut ka: Vec<u64> = a.points.iter().map(|pp| pp.key).collect();
        let mut kb: Vec<u64> = b.points.iter().map(|pp| pp.key).collect();
        ka.sort_unstable();
        kb.sort_unstable();
        prop_assert_eq!(ka, kb);
    }

    #[test]
    fn duplicate_axis_entries_do_not_change_identity(grid in grid_strategy()) {
        let mut doubled = grid.clone();
        doubled.workloads.extend(grid.workloads.iter().cloned());
        doubled.seeds.extend(grid.seeds.iter().cloned());
        let a = plan(&grid).unwrap();
        let b = plan(&doubled).unwrap();
        prop_assert_eq!(a.id, b.id);
        prop_assert_eq!(a.points.len(), b.points.len());
    }
}
