//! Instruction rendering and binary encoding.
//!
//! * [`render_instr`] produces the canonical assembler text for an
//!   instruction (used by `Program`'s `Display` and accepted back by the
//!   assembler — round-trip tested).
//! * [`encode_instr`]/[`decode_instr`] pack an instruction into a single
//!   64-bit word, and [`encode_annot`]/[`decode_annot`] pack the annotation
//!   field into a 32-bit word — the analogue of the annotation field the
//!   paper adds to SimpleScalar binaries.

use crate::annot::{Annot, SpecDir, Stream};
use crate::instr::{BranchCond, Instr, Src, Width};
use crate::op::{FpBinOp, FpCmpOp, FpUnOp, IntOp};
use crate::program::Program;
use crate::reg::{FpReg, IntReg, Queue};
use crate::{IsaError, Result};

/// Renders the target of a control instruction: a label name if one is
/// defined at the target index, else `@index`.
fn render_target(t: u32, p: &Program) -> String {
    match p.labels_at(t).next() {
        Some(l) => l.to_string(),
        None => format!("@{t}"),
    }
}

/// Renders one instruction in canonical assembler syntax.
pub fn render_instr(i: &Instr, p: &Program) -> String {
    match *i {
        Instr::IntOp { op, dst, a, b } => format!("{op} {dst}, {a}, {b}"),
        Instr::Li { dst, imm } => format!("li {dst}, {imm}"),
        Instr::FpBin { op, dst, a, b } => format!("{op} {dst}, {a}, {b}"),
        Instr::FpUn { op, dst, a } => format!("{op} {dst}, {a}"),
        Instr::FpCmp { op, dst, a, b } => format!("{op} {dst}, {a}, {b}"),
        Instr::CvtIf { dst, src } => format!("cvt.d.l {dst}, {src}"),
        Instr::CvtFi { dst, src } => format!("cvt.l.d {dst}, {src}"),
        Instr::Load {
            dst,
            base,
            off,
            width,
            signed,
        } => {
            let u = if !signed && width != Width::D {
                "u"
            } else {
                ""
            };
            format!("l{}{} {dst}, {off}({base})", width.suffix(), u)
        }
        Instr::LoadF { dst, base, off } => format!("l.d {dst}, {off}({base})"),
        Instr::Store {
            src,
            base,
            off,
            width,
        } => {
            format!("s{} {src}, {off}({base})", width.suffix())
        }
        Instr::StoreF { src, base, off } => format!("s.d {src}, {off}({base})"),
        Instr::Prefetch { base, off } => format!("pref {off}({base})"),
        Instr::LoadQ {
            q,
            base,
            off,
            width,
            signed,
        } => {
            let u = if !signed && width != Width::D {
                "u"
            } else {
                ""
            };
            format!("l{}{}.q {q}, {off}({base})", width.suffix(), u)
        }
        Instr::StoreQ {
            q,
            base,
            off,
            width,
        } => {
            format!("s{}.q {q}, {off}({base})", width.suffix())
        }
        Instr::SendI { q, src } => format!("send {q}, {src}"),
        Instr::SendF { q, src } => format!("send.d {q}, {src}"),
        Instr::RecvI { q, dst } => format!("recv {dst}, {q}"),
        Instr::RecvF { q, dst } => format!("recv.d {dst}, {q}"),
        Instr::PutScq => "putscq".into(),
        Instr::GetScq => "getscq".into(),
        Instr::Branch { cond, a, b, target } => {
            format!("{} {a}, {b}, {}", cond.mnemonic(), render_target(target, p))
        }
        Instr::Jump { target } => format!("j {}", render_target(target, p)),
        Instr::CBranch { target } => format!("cbr {}", render_target(target, p)),
        Instr::Halt => "halt".into(),
        Instr::Nop => "nop".into(),
    }
}

// ---------------------------------------------------------------------------
// Binary encoding.
//
// Layout (64-bit little word):
//   bits 0..8    primary opcode
//   bits 8..32   operand fields (registers, queue ids, sub-opcodes, flags)
//   bits 32..64  32-bit immediate / offset / target
// ---------------------------------------------------------------------------

mod opc {
    pub const INT_OP_RR: u8 = 0x01;
    pub const INT_OP_RI: u8 = 0x02;
    pub const LI: u8 = 0x03;
    pub const FP_BIN: u8 = 0x04;
    pub const FP_UN: u8 = 0x05;
    pub const FP_CMP: u8 = 0x06;
    pub const CVT_IF: u8 = 0x07;
    pub const CVT_FI: u8 = 0x08;
    pub const LOAD: u8 = 0x10;
    pub const LOAD_F: u8 = 0x11;
    pub const STORE: u8 = 0x12;
    pub const STORE_F: u8 = 0x13;
    pub const PREFETCH: u8 = 0x14;
    pub const LOAD_Q: u8 = 0x15;
    pub const STORE_Q: u8 = 0x16;
    pub const SEND_I: u8 = 0x20;
    pub const SEND_F: u8 = 0x21;
    pub const RECV_I: u8 = 0x22;
    pub const RECV_F: u8 = 0x23;
    pub const PUT_SCQ: u8 = 0x24;
    pub const GET_SCQ: u8 = 0x25;
    pub const BRANCH: u8 = 0x30;
    pub const JUMP: u8 = 0x31;
    pub const CBRANCH: u8 = 0x32;
    pub const HALT: u8 = 0x3e;
    pub const NOP: u8 = 0x3f;
}

fn int_op_code(op: IntOp) -> u8 {
    match op {
        IntOp::Add => 0,
        IntOp::Sub => 1,
        IntOp::Mul => 2,
        IntOp::Div => 3,
        IntOp::Rem => 4,
        IntOp::And => 5,
        IntOp::Or => 6,
        IntOp::Xor => 7,
        IntOp::Sll => 8,
        IntOp::Srl => 9,
        IntOp::Sra => 10,
        IntOp::Slt => 11,
        IntOp::Sltu => 12,
    }
}

fn int_op_from(code: u8) -> Result<IntOp> {
    Ok(match code {
        0 => IntOp::Add,
        1 => IntOp::Sub,
        2 => IntOp::Mul,
        3 => IntOp::Div,
        4 => IntOp::Rem,
        5 => IntOp::And,
        6 => IntOp::Or,
        7 => IntOp::Xor,
        8 => IntOp::Sll,
        9 => IntOp::Srl,
        10 => IntOp::Sra,
        11 => IntOp::Slt,
        12 => IntOp::Sltu,
        _ => return Err(IsaError::Encode(format!("bad int-op code {code}"))),
    })
}

fn queue_code(q: Queue) -> u8 {
    match q {
        Queue::Ldq => 0,
        Queue::Sdq => 1,
        Queue::Cdq => 2,
        Queue::Cq => 3,
        Queue::Scq => 4,
    }
}

fn queue_from(code: u8) -> Result<Queue> {
    Ok(match code {
        0 => Queue::Ldq,
        1 => Queue::Sdq,
        2 => Queue::Cdq,
        3 => Queue::Cq,
        4 => Queue::Scq,
        _ => return Err(IsaError::Encode(format!("bad queue code {code}"))),
    })
}

fn width_code(w: Width) -> u8 {
    match w {
        Width::B => 0,
        Width::H => 1,
        Width::W => 2,
        Width::D => 3,
    }
}

fn width_from(code: u8) -> Width {
    match code & 3 {
        0 => Width::B,
        1 => Width::H,
        2 => Width::W,
        _ => Width::D,
    }
}

fn cond_code(c: BranchCond) -> u8 {
    match c {
        BranchCond::Eq => 0,
        BranchCond::Ne => 1,
        BranchCond::Lt => 2,
        BranchCond::Ge => 3,
        BranchCond::Ltu => 4,
        BranchCond::Geu => 5,
    }
}

fn cond_from(code: u8) -> Result<BranchCond> {
    Ok(match code {
        0 => BranchCond::Eq,
        1 => BranchCond::Ne,
        2 => BranchCond::Lt,
        3 => BranchCond::Ge,
        4 => BranchCond::Ltu,
        5 => BranchCond::Geu,
        _ => return Err(IsaError::Encode(format!("bad branch cond {code}"))),
    })
}

fn imm32(v: i64, what: &str) -> Result<u64> {
    i32::try_from(v)
        .map(|x| (x as u32 as u64) << 32)
        .map_err(|_| IsaError::Encode(format!("{what} {v} does not fit in 32 bits")))
}

#[inline]
fn field(v: u8, shift: u32) -> u64 {
    (v as u64) << shift
}

#[inline]
fn get(w: u64, shift: u32, bits: u32) -> u8 {
    ((w >> shift) & ((1 << bits) - 1)) as u8
}

#[inline]
fn get_imm(w: u64) -> i64 {
    (w >> 32) as u32 as i32 as i64
}

/// Encodes one instruction into a 64-bit word. Fails if an immediate or
/// offset does not fit in the 32-bit field.
pub fn encode_instr(i: &Instr) -> Result<u64> {
    use opc::*;
    Ok(match *i {
        Instr::IntOp { op, dst, a, b } => {
            let base = field(int_op_code(op), 8)
                | field(dst.index() as u8, 14)
                | field(a.index() as u8, 19);
            match b {
                Src::Reg(r) => INT_OP_RR as u64 | base | field(r.index() as u8, 24),
                Src::Imm(v) => INT_OP_RI as u64 | base | imm32(v, "immediate")?,
            }
        }
        Instr::Li { dst, imm } => {
            LI as u64 | field(dst.index() as u8, 14) | imm32(imm, "immediate")?
        }
        Instr::FpBin { op, dst, a, b } => {
            let code = match op {
                FpBinOp::Add => 0,
                FpBinOp::Sub => 1,
                FpBinOp::Mul => 2,
                FpBinOp::Div => 3,
                FpBinOp::Min => 4,
                FpBinOp::Max => 5,
            };
            FP_BIN as u64
                | field(code, 8)
                | field(dst.index() as u8, 14)
                | field(a.index() as u8, 19)
                | field(b.index() as u8, 24)
        }
        Instr::FpUn { op, dst, a } => {
            let code = match op {
                FpUnOp::Neg => 0,
                FpUnOp::Abs => 1,
                FpUnOp::Sqrt => 2,
                FpUnOp::Mov => 3,
            };
            FP_UN as u64
                | field(code, 8)
                | field(dst.index() as u8, 14)
                | field(a.index() as u8, 19)
        }
        Instr::FpCmp { op, dst, a, b } => {
            let code = match op {
                FpCmpOp::Eq => 0,
                FpCmpOp::Lt => 1,
                FpCmpOp::Le => 2,
            };
            FP_CMP as u64
                | field(code, 8)
                | field(dst.index() as u8, 14)
                | field(a.index() as u8, 19)
                | field(b.index() as u8, 24)
        }
        Instr::CvtIf { dst, src } => {
            CVT_IF as u64 | field(dst.index() as u8, 14) | field(src.index() as u8, 19)
        }
        Instr::CvtFi { dst, src } => {
            CVT_FI as u64 | field(dst.index() as u8, 14) | field(src.index() as u8, 19)
        }
        Instr::Load {
            dst,
            base,
            off,
            width,
            signed,
        } => {
            LOAD as u64
                | field(dst.index() as u8, 14)
                | field(base.index() as u8, 19)
                | field(width_code(width), 24)
                | field(signed as u8, 26)
                | imm32(off as i64, "offset")?
        }
        Instr::LoadF { dst, base, off } => {
            LOAD_F as u64
                | field(dst.index() as u8, 14)
                | field(base.index() as u8, 19)
                | imm32(off as i64, "offset")?
        }
        Instr::Store {
            src,
            base,
            off,
            width,
        } => {
            STORE as u64
                | field(src.index() as u8, 14)
                | field(base.index() as u8, 19)
                | field(width_code(width), 24)
                | imm32(off as i64, "offset")?
        }
        Instr::StoreF { src, base, off } => {
            STORE_F as u64
                | field(src.index() as u8, 14)
                | field(base.index() as u8, 19)
                | imm32(off as i64, "offset")?
        }
        Instr::Prefetch { base, off } => {
            PREFETCH as u64 | field(base.index() as u8, 19) | imm32(off as i64, "offset")?
        }
        Instr::LoadQ {
            q,
            base,
            off,
            width,
            signed,
        } => {
            LOAD_Q as u64
                | field(queue_code(q), 14)
                | field(base.index() as u8, 19)
                | field(width_code(width), 24)
                | field(signed as u8, 26)
                | imm32(off as i64, "offset")?
        }
        Instr::StoreQ {
            q,
            base,
            off,
            width,
        } => {
            STORE_Q as u64
                | field(queue_code(q), 14)
                | field(base.index() as u8, 19)
                | field(width_code(width), 24)
                | imm32(off as i64, "offset")?
        }
        Instr::SendI { q, src } => {
            SEND_I as u64 | field(queue_code(q), 14) | field(src.index() as u8, 19)
        }
        Instr::SendF { q, src } => {
            SEND_F as u64 | field(queue_code(q), 14) | field(src.index() as u8, 19)
        }
        Instr::RecvI { q, dst } => {
            RECV_I as u64 | field(queue_code(q), 14) | field(dst.index() as u8, 19)
        }
        Instr::RecvF { q, dst } => {
            RECV_F as u64 | field(queue_code(q), 14) | field(dst.index() as u8, 19)
        }
        Instr::PutScq => PUT_SCQ as u64,
        Instr::GetScq => GET_SCQ as u64,
        Instr::Branch { cond, a, b, target } => {
            BRANCH as u64
                | field(cond_code(cond), 8)
                | field(a.index() as u8, 14)
                | field(b.index() as u8, 19)
                | imm32(target as i64, "target")?
        }
        Instr::Jump { target } => JUMP as u64 | imm32(target as i64, "target")?,
        Instr::CBranch { target } => CBRANCH as u64 | imm32(target as i64, "target")?,
        Instr::Halt => HALT as u64,
        Instr::Nop => NOP as u64,
    })
}

/// Decodes a 64-bit word back into an instruction.
pub fn decode_instr(w: u64) -> Result<Instr> {
    use opc::*;
    let op = (w & 0xff) as u8;
    let ireg = |s: u32| IntReg::new(get(w, s, 5));
    let freg = |s: u32| FpReg::new(get(w, s, 5));
    Ok(match op {
        INT_OP_RR => Instr::IntOp {
            op: int_op_from(get(w, 8, 6))?,
            dst: ireg(14),
            a: ireg(19),
            b: Src::Reg(ireg(24)),
        },
        INT_OP_RI => Instr::IntOp {
            op: int_op_from(get(w, 8, 6))?,
            dst: ireg(14),
            a: ireg(19),
            b: Src::Imm(get_imm(w)),
        },
        LI => Instr::Li {
            dst: ireg(14),
            imm: get_imm(w),
        },
        FP_BIN => Instr::FpBin {
            op: match get(w, 8, 6) {
                0 => FpBinOp::Add,
                1 => FpBinOp::Sub,
                2 => FpBinOp::Mul,
                3 => FpBinOp::Div,
                4 => FpBinOp::Min,
                5 => FpBinOp::Max,
                c => return Err(IsaError::Encode(format!("bad fp-bin code {c}"))),
            },
            dst: freg(14),
            a: freg(19),
            b: freg(24),
        },
        FP_UN => Instr::FpUn {
            op: match get(w, 8, 6) {
                0 => FpUnOp::Neg,
                1 => FpUnOp::Abs,
                2 => FpUnOp::Sqrt,
                3 => FpUnOp::Mov,
                c => return Err(IsaError::Encode(format!("bad fp-un code {c}"))),
            },
            dst: freg(14),
            a: freg(19),
        },
        FP_CMP => Instr::FpCmp {
            op: match get(w, 8, 6) {
                0 => FpCmpOp::Eq,
                1 => FpCmpOp::Lt,
                2 => FpCmpOp::Le,
                c => return Err(IsaError::Encode(format!("bad fp-cmp code {c}"))),
            },
            dst: ireg(14),
            a: freg(19),
            b: freg(24),
        },
        CVT_IF => Instr::CvtIf {
            dst: freg(14),
            src: ireg(19),
        },
        CVT_FI => Instr::CvtFi {
            dst: ireg(14),
            src: freg(19),
        },
        LOAD => Instr::Load {
            dst: ireg(14),
            base: ireg(19),
            off: get_imm(w) as i32,
            width: width_from(get(w, 24, 2)),
            signed: get(w, 26, 1) != 0,
        },
        LOAD_F => Instr::LoadF {
            dst: freg(14),
            base: ireg(19),
            off: get_imm(w) as i32,
        },
        STORE => Instr::Store {
            src: ireg(14),
            base: ireg(19),
            off: get_imm(w) as i32,
            width: width_from(get(w, 24, 2)),
        },
        STORE_F => Instr::StoreF {
            src: freg(14),
            base: ireg(19),
            off: get_imm(w) as i32,
        },
        PREFETCH => Instr::Prefetch {
            base: ireg(19),
            off: get_imm(w) as i32,
        },
        LOAD_Q => Instr::LoadQ {
            q: queue_from(get(w, 14, 3))?,
            base: ireg(19),
            off: get_imm(w) as i32,
            width: width_from(get(w, 24, 2)),
            signed: get(w, 26, 1) != 0,
        },
        STORE_Q => Instr::StoreQ {
            q: queue_from(get(w, 14, 3))?,
            base: ireg(19),
            off: get_imm(w) as i32,
            width: width_from(get(w, 24, 2)),
        },
        SEND_I => Instr::SendI {
            q: queue_from(get(w, 14, 3))?,
            src: ireg(19),
        },
        SEND_F => Instr::SendF {
            q: queue_from(get(w, 14, 3))?,
            src: freg(19),
        },
        RECV_I => Instr::RecvI {
            q: queue_from(get(w, 14, 3))?,
            dst: ireg(19),
        },
        RECV_F => Instr::RecvF {
            q: queue_from(get(w, 14, 3))?,
            dst: freg(19),
        },
        PUT_SCQ => Instr::PutScq,
        GET_SCQ => Instr::GetScq,
        BRANCH => Instr::Branch {
            cond: cond_from(get(w, 8, 6))?,
            a: ireg(14),
            b: ireg(19),
            target: get_imm(w) as u32,
        },
        JUMP => Instr::Jump {
            target: get_imm(w) as u32,
        },
        CBRANCH => Instr::CBranch {
            target: get_imm(w) as u32,
        },
        HALT => Instr::Halt,
        NOP => Instr::Nop,
        _ => return Err(IsaError::Encode(format!("unknown opcode {op:#x}"))),
    })
}

/// Encodes the annotation field into 32 bits:
/// bit 0 stream (1 = Access), bit 1 cmas, bit 2 push_cq, bit 3
/// probable_miss, bit 4 trigger-valid, bit 5 scq_get, bit 6
/// speculate-valid, bit 7 speculate direction (1 = not-taken), bits 8..32
/// trigger id.
pub fn encode_annot(a: &Annot) -> Result<u32> {
    let mut w = 0u32;
    if a.stream == Stream::Access {
        w |= 1;
    }
    if a.cmas {
        w |= 2;
    }
    if a.push_cq {
        w |= 4;
    }
    if a.probable_miss {
        w |= 8;
    }
    if let Some(t) = a.trigger {
        if t >= 1 << 24 {
            return Err(IsaError::Encode(format!(
                "trigger id {t} does not fit in 24 bits"
            )));
        }
        w |= 16 | (t << 8);
    }
    if a.scq_get {
        w |= 32;
    }
    match a.speculate {
        Some(SpecDir::Taken) => w |= 64,
        Some(SpecDir::NotTaken) => w |= 64 | 128,
        None => {}
    }
    Ok(w)
}

/// Decodes an annotation field.
pub fn decode_annot(w: u32) -> Annot {
    Annot {
        stream: if w & 1 != 0 {
            Stream::Access
        } else {
            Stream::Computation
        },
        cmas: w & 2 != 0,
        push_cq: w & 4 != 0,
        probable_miss: w & 8 != 0,
        trigger: (w & 16 != 0).then_some(w >> 8),
        scq_get: w & 32 != 0,
        speculate: (w & 64 != 0).then_some(if w & 128 != 0 {
            SpecDir::NotTaken
        } else {
            SpecDir::Taken
        }),
    }
}

/// Encodes a whole program as `(instruction, annotation)` word pairs — the
/// "binary" form of a DISA executable.
pub fn encode_program(p: &Program) -> Result<Vec<(u64, u32)>> {
    (0..p.len())
        .map(|pc| Ok((encode_instr(p.instr(pc))?, encode_annot(p.annot(pc))?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instr) {
        let w = encode_instr(&i).unwrap();
        assert_eq!(decode_instr(w).unwrap(), i, "word {w:#x}");
    }

    #[test]
    fn encode_round_trips_representatives() {
        let r = IntReg::new;
        let f = FpReg::new;
        roundtrip(Instr::IntOp {
            op: IntOp::Add,
            dst: r(1),
            a: r(2),
            b: Src::Reg(r(3)),
        });
        roundtrip(Instr::IntOp {
            op: IntOp::Sltu,
            dst: r(31),
            a: r(30),
            b: Src::Imm(-12345),
        });
        roundtrip(Instr::Li {
            dst: r(7),
            imm: i32::MIN as i64,
        });
        roundtrip(Instr::FpBin {
            op: FpBinOp::Max,
            dst: f(1),
            a: f(2),
            b: f(3),
        });
        roundtrip(Instr::FpUn {
            op: FpUnOp::Sqrt,
            dst: f(9),
            a: f(8),
        });
        roundtrip(Instr::FpCmp {
            op: FpCmpOp::Le,
            dst: r(4),
            a: f(5),
            b: f(6),
        });
        roundtrip(Instr::CvtIf {
            dst: f(2),
            src: r(3),
        });
        roundtrip(Instr::CvtFi {
            dst: r(3),
            src: f(2),
        });
        roundtrip(Instr::Load {
            dst: r(5),
            base: r(6),
            off: -8,
            width: Width::H,
            signed: false,
        });
        roundtrip(Instr::LoadF {
            dst: f(5),
            base: r(6),
            off: 4096,
        });
        roundtrip(Instr::Store {
            src: r(5),
            base: r(6),
            off: 16,
            width: Width::B,
        });
        roundtrip(Instr::StoreF {
            src: f(5),
            base: r(6),
            off: 0,
        });
        roundtrip(Instr::Prefetch {
            base: r(9),
            off: 64,
        });
        roundtrip(Instr::LoadQ {
            q: Queue::Ldq,
            base: r(2),
            off: 8,
            width: Width::D,
            signed: true,
        });
        roundtrip(Instr::StoreQ {
            q: Queue::Sdq,
            base: r(2),
            off: 8,
            width: Width::W,
        });
        roundtrip(Instr::SendI {
            q: Queue::Cdq,
            src: r(11),
        });
        roundtrip(Instr::SendF {
            q: Queue::Ldq,
            src: f(11),
        });
        roundtrip(Instr::RecvI {
            q: Queue::Cdq,
            dst: r(12),
        });
        roundtrip(Instr::RecvF {
            q: Queue::Ldq,
            dst: f(12),
        });
        roundtrip(Instr::PutScq);
        roundtrip(Instr::GetScq);
        roundtrip(Instr::Branch {
            cond: BranchCond::Geu,
            a: r(1),
            b: r(2),
            target: 777,
        });
        roundtrip(Instr::Jump { target: 0 });
        roundtrip(Instr::CBranch { target: 42 });
        roundtrip(Instr::Halt);
        roundtrip(Instr::Nop);
    }

    #[test]
    fn large_immediate_rejected() {
        let i = Instr::Li {
            dst: IntReg::new(1),
            imm: 1 << 40,
        };
        assert!(encode_instr(&i).is_err());
    }

    #[test]
    fn annot_round_trip() {
        for a in [
            Annot::default(),
            Annot {
                stream: Stream::Access,
                cmas: true,
                trigger: Some(3),
                push_cq: true,
                probable_miss: true,
                scq_get: true,
                speculate: Some(SpecDir::Taken),
            },
            Annot {
                trigger: Some(0),
                ..Annot::default()
            },
            Annot {
                speculate: Some(SpecDir::NotTaken),
                ..Annot::default()
            },
            Annot {
                speculate: Some(SpecDir::Taken),
                ..Annot::default()
            },
        ] {
            assert_eq!(decode_annot(encode_annot(&a).unwrap()), a);
        }
    }

    #[test]
    fn annot_trigger_overflow_rejected() {
        let a = Annot {
            trigger: Some(1 << 24),
            ..Annot::default()
        };
        assert!(encode_annot(&a).is_err());
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert!(decode_instr(0xee).is_err());
    }
}
