//! # DISA — the Decoupled Instruction Set Architecture
//!
//! This crate defines the instruction set used by the HiDISC simulation
//! suite. It plays the role that PISA (the Portable Instruction Set
//! Architecture of SimpleScalar 3.0) plays in the original paper:
//!
//! * a MIPS-like 64-bit RISC instruction set ([`Instr`]) with integer and
//!   floating-point register files,
//! * the *queue operations* of a decoupled architecture (sends/receives on
//!   the Load Data Queue, Store Data Queue, Control Queue, Computation Data
//!   Queue and Slip Control Queue),
//! * a per-instruction *annotation* ([`Annot`]) carrying the stream
//!   separation decided by the HiDISC compiler (Computation vs Access
//!   stream, CMAS membership, trigger points) — the equivalent of the
//!   annotation field of a SimpleScalar binary,
//! * a text assembler ([`asm::assemble`]) and disassembler,
//! * a [`builder::ProgramBuilder`] API for generating programs from Rust,
//! * a functional (architectural) interpreter ([`interp::Interp`]) used for
//!   reference execution, cache profiling and slicer validation,
//! * the byte-addressed sparse [`mem::Memory`] shared by the functional and
//!   timing simulators.
//!
//! Programs are sequences of instructions addressed by *instruction index*
//! (not byte address); branch targets are instruction indices. This mirrors
//! how SimpleScalar treats its fixed-width 8-byte instructions.

#![forbid(unsafe_code)]

pub mod annot;
pub mod asm;
pub mod builder;
pub mod encode;
pub mod instr;
pub mod interp;
pub mod mem;
pub mod op;
pub mod program;
pub mod reg;
pub mod testgen;
pub mod wire;

pub use annot::{Annot, SpecDir, SquashHazard, Stream};
pub use instr::{AddrForm, BranchCond, Instr, RegRef, Src, Width};
pub use op::{FpBinOp, FpCmpOp, FpUnOp, IntOp};
pub use program::{Label, Program};
pub use reg::{FpReg, IntReg, Queue};

/// Errors produced by assembling, interpreting or otherwise manipulating
/// DISA programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// Assembler error: message plus 1-based source line.
    Parse { line: usize, msg: String },
    /// A branch or jump targets a label that was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// Runtime error in the functional interpreter.
    Exec { pc: u32, msg: String },
    /// Memory access fault (unaligned or out of simulated range).
    Mem { addr: u64, msg: String },
    /// Instruction encoding/decoding failure.
    Encode(String),
}

impl std::fmt::Display for IsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsaError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            IsaError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            IsaError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            IsaError::Exec { pc, msg } => write!(f, "execution error at pc {pc}: {msg}"),
            IsaError::Mem { addr, msg } => write!(f, "memory error at {addr:#x}: {msg}"),
            IsaError::Encode(m) => write!(f, "encoding error: {m}"),
        }
    }
}

impl std::error::Error for IsaError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, IsaError>;
