//! Byte-addressed sparse data memory.
//!
//! A single [`Memory`] holds the architectural contents of the simulated
//! address space. The timing caches in `hidisc-mem` are *tag-only* models:
//! data always lives here, which keeps the functional and timing simulators
//! trivially coherent and makes end-to-end result comparison exact.
//!
//! Memory is organised as 4 KiB pages allocated on first touch. All accesses
//! must be naturally aligned (as on MIPS/PISA); unaligned accesses return
//! [`IsaError::Mem`].

use crate::wire::{Dec, Enc, WireResult};
use crate::{IsaError, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// Page size in bytes (power of two).
pub const PAGE_SIZE: u64 = 4096;
const PAGE_MASK: u64 = PAGE_SIZE - 1;

/// Sparse byte-addressed memory.
///
/// Pages are reference-counted so that `clone()` is an O(pages) pointer
/// copy and subsequent writes copy only the touched page (copy-on-write).
/// This is what makes whole-machine snapshots an O(dirty) operation.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Arc<[u8; PAGE_SIZE as usize]>>,
}

impl Memory {
    /// Creates an empty memory (all bytes read as zero).
    pub fn new() -> Memory {
        Memory::default()
    }

    #[inline]
    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE as usize]> {
        self.pages.get(&(addr & !PAGE_MASK)).map(|b| &**b)
    }

    #[inline]
    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE as usize] {
        Arc::make_mut(
            self.pages
                .entry(addr & !PAGE_MASK)
                .or_insert_with(|| Arc::new([0u8; PAGE_SIZE as usize])),
        )
    }

    #[inline]
    fn check_align(addr: u64, size: u64) -> Result<()> {
        if !addr.is_multiple_of(size) {
            return Err(IsaError::Mem {
                addr,
                msg: format!("unaligned {size}-byte access"),
            });
        }
        Ok(())
    }

    /// Reads `N` bytes (N ≤ 8, naturally aligned ⇒ never crosses a page).
    #[inline]
    fn read_raw<const N: usize>(&self, addr: u64) -> [u8; N] {
        debug_assert!(N as u64 <= PAGE_SIZE);
        match self.page(addr) {
            Some(p) => {
                let o = (addr & PAGE_MASK) as usize;
                let mut out = [0u8; N];
                out.copy_from_slice(&p[o..o + N]);
                out
            }
            None => [0u8; N],
        }
    }

    #[inline]
    fn write_raw<const N: usize>(&mut self, addr: u64, bytes: [u8; N]) {
        debug_assert!(N as u64 <= PAGE_SIZE);
        let p = self.page_mut(addr);
        let o = (addr & PAGE_MASK) as usize;
        p[o..o + N].copy_from_slice(&bytes);
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.read_raw::<1>(addr)[0]
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        self.write_raw::<1>(addr, [v]);
    }

    /// Reads a little-endian u16 (must be 2-byte aligned).
    pub fn read_u16(&self, addr: u64) -> Result<u16> {
        Self::check_align(addr, 2)?;
        Ok(u16::from_le_bytes(self.read_raw::<2>(addr)))
    }

    /// Writes a little-endian u16 (must be 2-byte aligned).
    pub fn write_u16(&mut self, addr: u64, v: u16) -> Result<()> {
        Self::check_align(addr, 2)?;
        self.write_raw::<2>(addr, v.to_le_bytes());
        Ok(())
    }

    /// Reads a little-endian u32 (must be 4-byte aligned).
    pub fn read_u32(&self, addr: u64) -> Result<u32> {
        Self::check_align(addr, 4)?;
        Ok(u32::from_le_bytes(self.read_raw::<4>(addr)))
    }

    /// Writes a little-endian u32 (must be 4-byte aligned).
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<()> {
        Self::check_align(addr, 4)?;
        self.write_raw::<4>(addr, v.to_le_bytes());
        Ok(())
    }

    /// Reads a little-endian u64 (must be 8-byte aligned).
    pub fn read_u64(&self, addr: u64) -> Result<u64> {
        Self::check_align(addr, 8)?;
        Ok(u64::from_le_bytes(self.read_raw::<8>(addr)))
    }

    /// Writes a little-endian u64 (must be 8-byte aligned).
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<()> {
        Self::check_align(addr, 8)?;
        self.write_raw::<8>(addr, v.to_le_bytes());
        Ok(())
    }

    /// Reads an i64 (8-byte aligned).
    pub fn read_i64(&self, addr: u64) -> Result<i64> {
        Ok(self.read_u64(addr)? as i64)
    }

    /// Writes an i64 (8-byte aligned).
    pub fn write_i64(&mut self, addr: u64, v: i64) -> Result<()> {
        self.write_u64(addr, v as u64)
    }

    /// Reads an f64 (8-byte aligned).
    pub fn read_f64(&self, addr: u64) -> Result<f64> {
        Ok(f64::from_bits(self.read_u64(addr)?))
    }

    /// Writes an f64 (8-byte aligned).
    pub fn write_f64(&mut self, addr: u64, v: f64) -> Result<()> {
        self.write_u64(addr, v.to_bits())
    }

    /// Generic width load as used by the interpreter: returns the value
    /// sign- or zero-extended to i64.
    pub fn load(&self, addr: u64, width: crate::instr::Width, signed: bool) -> Result<i64> {
        use crate::instr::Width::*;
        Ok(match (width, signed) {
            (B, true) => self.read_u8(addr) as i8 as i64,
            (B, false) => self.read_u8(addr) as i64,
            (H, true) => self.read_u16(addr)? as i16 as i64,
            (H, false) => self.read_u16(addr)? as i64,
            (W, true) => self.read_u32(addr)? as i32 as i64,
            (W, false) => self.read_u32(addr)? as i64,
            (D, _) => self.read_u64(addr)? as i64,
        })
    }

    /// Generic width store (truncating).
    pub fn store(&mut self, addr: u64, width: crate::instr::Width, v: i64) -> Result<()> {
        use crate::instr::Width::*;
        match width {
            B => {
                self.write_u8(addr, v as u8);
                Ok(())
            }
            H => self.write_u16(addr, v as u16),
            W => self.write_u32(addr, v as u32),
            D => self.write_u64(addr, v as u64),
        }
    }

    /// Bulk-writes a slice of i64 words starting at `base` (8-byte aligned).
    pub fn write_i64_slice(&mut self, base: u64, vals: &[i64]) -> Result<()> {
        for (k, &v) in vals.iter().enumerate() {
            self.write_i64(base + 8 * k as u64, v)?;
        }
        Ok(())
    }

    /// Bulk-writes a slice of f64 values starting at `base` (8-byte aligned).
    pub fn write_f64_slice(&mut self, base: u64, vals: &[f64]) -> Result<()> {
        for (k, &v) in vals.iter().enumerate() {
            self.write_f64(base + 8 * k as u64, v)?;
        }
        Ok(())
    }

    /// Bulk-writes raw bytes starting at `base`.
    pub fn write_bytes(&mut self, base: u64, bytes: &[u8]) {
        for (k, &b) in bytes.iter().enumerate() {
            self.write_u8(base + k as u64, b);
        }
    }

    /// Bulk-reads `n` i64 words starting at `base`.
    pub fn read_i64_slice(&self, base: u64, n: usize) -> Result<Vec<i64>> {
        (0..n).map(|k| self.read_i64(base + 8 * k as u64)).collect()
    }

    /// Number of pages touched so far.
    pub fn touched_pages(&self) -> usize {
        self.pages.len()
    }

    /// An order-independent checksum of all touched memory, used by the
    /// end-to-end tests to compare final machine states. Untouched and
    /// all-zero pages hash identically (an explicit zero write is
    /// indistinguishable from never writing, which is the architectural
    /// semantics here).
    pub fn checksum(&self) -> u64 {
        let mut keys: Vec<&u64> = self.pages.keys().collect();
        keys.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for k in keys {
            let page = &self.pages[k];
            if page.iter().all(|&b| b == 0) {
                continue;
            }
            h ^= *k;
            h = h.wrapping_mul(0x1000_0000_01b3);
            for &b in page.iter() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }

    /// Serialises all touched pages (sorted by base address) for the
    /// checkpoint format.
    pub fn save_state(&self, e: &mut Enc) {
        let mut keys: Vec<u64> = self.pages.keys().copied().collect();
        keys.sort_unstable();
        e.usize(keys.len());
        for k in keys {
            e.u64(k);
            e.bytes(&self.pages[&k][..]);
        }
    }

    /// Replaces the entire contents from a [`save_state`](Self::save_state)
    /// stream.
    pub fn load_state(&mut self, d: &mut Dec) -> WireResult<()> {
        let n = d.usize()?;
        let mut pages = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = d.u64()?;
            let bytes = d.bytes(PAGE_SIZE as usize)?;
            let mut page = [0u8; PAGE_SIZE as usize];
            page.copy_from_slice(bytes);
            pages.insert(k, Arc::new(page));
        }
        self.pages = pages;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Width;

    #[test]
    fn zero_fill_semantics() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0x1234), 0);
        assert_eq!(m.read_u64(0x10_0000).unwrap(), 0);
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.read_u64(0x1000).unwrap(), 0xdead_beef_cafe_f00d);
        m.write_f64(0x2000, -3.5).unwrap();
        assert_eq!(m.read_f64(0x2000).unwrap(), -3.5);
        m.write_u8(0x3000, 0xab);
        assert_eq!(m.read_u8(0x3000), 0xab);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(m.read_u8(0x1000), 0x08);
        assert_eq!(m.read_u8(0x1007), 0x01);
        assert_eq!(m.read_u32(0x1000).unwrap(), 0x0506_0708);
    }

    #[test]
    fn alignment_enforced() {
        let mut m = Memory::new();
        assert!(m.read_u64(0x1001).is_err());
        assert!(m.write_u32(0x1002, 0).is_err());
        assert!(m.read_u16(0x1001).is_err());
        // byte accesses are always fine
        m.write_u8(0x1001, 7);
        assert_eq!(m.read_u8(0x1001), 7);
    }

    #[test]
    fn sign_extension_on_load() {
        let mut m = Memory::new();
        m.write_u8(0x100, 0xff);
        assert_eq!(m.load(0x100, Width::B, true).unwrap(), -1);
        assert_eq!(m.load(0x100, Width::B, false).unwrap(), 0xff);
        m.write_u16(0x200, 0x8000).unwrap();
        assert_eq!(m.load(0x200, Width::H, true).unwrap(), -32768);
        assert_eq!(m.load(0x200, Width::H, false).unwrap(), 0x8000);
    }

    #[test]
    fn page_boundary_writes() {
        let mut m = Memory::new();
        // last byte of one page and first of the next
        m.write_u8(PAGE_SIZE - 1, 1);
        m.write_u8(PAGE_SIZE, 2);
        assert_eq!(m.read_u8(PAGE_SIZE - 1), 1);
        assert_eq!(m.read_u8(PAGE_SIZE), 2);
        assert_eq!(m.touched_pages(), 2);
    }

    #[test]
    fn checksum_insensitive_to_zero_pages() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        a.write_u64(0x1000, 42).unwrap();
        b.write_u64(0x1000, 42).unwrap();
        b.write_u64(0x9000, 0).unwrap(); // touched but zero
        assert_eq!(a.checksum(), b.checksum());
        b.write_u64(0x9000, 1).unwrap();
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut a = Memory::new();
        a.write_u64(0x1000, 11).unwrap();
        a.write_u64(0x9000, 22).unwrap();
        let snap = a.clone();
        // Mutating the original must not leak into the snapshot...
        a.write_u64(0x1000, 99).unwrap();
        assert_eq!(snap.read_u64(0x1000).unwrap(), 11);
        assert_eq!(a.read_u64(0x1000).unwrap(), 99);
        // ...and untouched pages stay physically shared.
        assert_eq!(snap.read_u64(0x9000).unwrap(), 22);
    }

    #[test]
    fn save_load_round_trips() {
        let mut a = Memory::new();
        a.write_u64(0x1000, 0xdead_beef).unwrap();
        a.write_u8(0x5001, 7);
        let mut e = crate::wire::Enc::new();
        a.save_state(&mut e);
        let buf = e.finish();
        let mut b = Memory::new();
        b.write_u64(0x7777_7000, 1).unwrap(); // stale state must vanish
        let mut d = crate::wire::Dec::new(&buf);
        b.load_state(&mut d).unwrap();
        d.done().unwrap();
        assert_eq!(b.checksum(), a.checksum());
        assert_eq!(b.read_u8(0x5001), 7);
        assert_eq!(b.read_u64(0x7777_7000).unwrap(), 0);
    }

    #[test]
    fn slice_helpers() {
        let mut m = Memory::new();
        m.write_i64_slice(0x4000, &[1, -2, 3]).unwrap();
        assert_eq!(m.read_i64_slice(0x4000, 3).unwrap(), vec![1, -2, 3]);
        m.write_bytes(0x5000, b"hello");
        assert_eq!(m.read_u8(0x5004), b'o');
    }
}
