//! The DISA instruction set.
//!
//! Instructions are fixed-format and addressed by instruction index. The
//! set contains:
//!
//! * conventional MIPS-like integer/floating-point arithmetic, loads,
//!   stores and branches, and
//! * the *queue instructions* of the decoupled machine, which only appear
//!   in programs produced by the HiDISC stream separator: queue loads and
//!   stores (`l.q`/`s.q`), sends/receives, consume-branches and the slip
//!   control pair `putscq`/`getscq`.

use crate::op::{FpBinOp, FpCmpOp, FpUnOp, IntOp};
use crate::reg::{FpReg, IntReg, Queue};
use std::fmt;

/// Memory access width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 1 byte.
    B,
    /// 2 bytes.
    H,
    /// 4 bytes.
    W,
    /// 8 bytes.
    D,
}

impl Width {
    /// Size in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            Width::B => 1,
            Width::H => 2,
            Width::W => 4,
            Width::D => 8,
        }
    }

    /// Assembler suffix character.
    pub fn suffix(self) -> char {
        match self {
            Width::B => 'b',
            Width::H => 'h',
            Width::W => 'w',
            Width::D => 'd',
        }
    }

    /// Parses an assembler suffix character.
    pub fn from_suffix(c: char) -> Option<Width> {
        Some(match c {
            'b' => Width::B,
            'h' => Width::H,
            'w' => Width::W,
            'd' => Width::D,
            _ => return None,
        })
    }
}

/// Conditions for conditional branches, comparing two integer registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

impl BranchCond {
    /// Evaluates the condition.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
            BranchCond::Ge => a >= b,
            BranchCond::Ltu => (a as u64) < (b as u64),
            BranchCond::Geu => (a as u64) >= (b as u64),
        }
    }

    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }

    /// Parses an assembler mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<BranchCond> {
        Some(match s {
            "beq" => BranchCond::Eq,
            "bne" => BranchCond::Ne,
            "blt" => BranchCond::Lt,
            "bge" => BranchCond::Ge,
            "bltu" => BranchCond::Ltu,
            "bgeu" => BranchCond::Geu,
            _ => return None,
        })
    }
}

/// Second source operand of an integer ALU instruction: register or
/// immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src {
    Reg(IntReg),
    Imm(i64),
}

impl Src {
    /// The register, if this operand is a register.
    #[inline]
    pub fn reg(self) -> Option<IntReg> {
        match self {
            Src::Reg(r) => Some(r),
            Src::Imm(_) => None,
        }
    }
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::Reg(r) => write!(f, "{r}"),
            Src::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// A reference to either register file, used by dataflow analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegRef {
    Int(IntReg),
    Fp(FpReg),
}

impl fmt::Display for RegRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegRef::Int(r) => write!(f, "{r}"),
            RegRef::Fp(r) => write!(f, "{r}"),
        }
    }
}

/// Functional-unit class an instruction executes on, used by the timing
/// models to pick a unit and a latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Single-cycle integer ALU (also covers queue sends/receives and nops).
    IntAlu,
    /// Integer multiply/divide unit.
    IntMul,
    /// Floating-point adder (add/sub/compare/convert).
    FpAlu,
    /// Floating-point multiply/divide/sqrt unit.
    FpMul,
    /// Load/store unit (memory port).
    Mem,
    /// Branch unit (resolved on an integer ALU in the models).
    Branch,
}

/// How an instruction forms the integer value it defines, from the point
/// of view of address-disambiguation analysis. This is the syntactic layer
/// of the base+offset abstract domain in `hidisc-verify`'s alias pass: the
/// domain interprets these forms over abstract register values, so the
/// classification lives here, next to the instruction set it must track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrForm {
    /// `dst = imm` — a known constant.
    Const { imm: i64 },
    /// `dst = src + imm` — a displacement off another register
    /// (`add`/`sub` with an immediate operand; `sub` negates).
    Offset { src: IntReg, imm: i64 },
    /// `dst = a + b` — the sum of two registers (resolvable when either
    /// side is abstractly constant).
    Sum { a: IntReg, b: IntReg },
    /// Any other function of the operands — including every load, receive
    /// and non-additive ALU op. The abstract domain may still fold it when
    /// all operands are constants; otherwise the result is unknown.
    Opaque,
}

/// A DISA instruction.
///
/// Branch and jump targets are *instruction indices* within the owning
/// [`crate::program::Program`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    // ---- integer arithmetic ----
    /// `op dst, a, b` — 64-bit integer ALU operation.
    IntOp {
        op: IntOp,
        dst: IntReg,
        a: IntReg,
        b: Src,
    },
    /// `li dst, imm` — load immediate.
    Li { dst: IntReg, imm: i64 },

    // ---- floating point ----
    /// `op.d dst, a, b`.
    FpBin {
        op: FpBinOp,
        dst: FpReg,
        a: FpReg,
        b: FpReg,
    },
    /// `op.d dst, a`.
    FpUn { op: FpUnOp, dst: FpReg, a: FpReg },
    /// `c.xx.d dst, a, b` — compare, 0/1 result into an integer register.
    FpCmp {
        op: FpCmpOp,
        dst: IntReg,
        a: FpReg,
        b: FpReg,
    },
    /// `cvt.d.l dst, src` — convert integer to double.
    CvtIf { dst: FpReg, src: IntReg },
    /// `cvt.l.d dst, src` — convert double to integer (truncating; saturates
    /// at the i64 range, NaN converts to 0).
    CvtFi { dst: IntReg, src: FpReg },

    // ---- memory ----
    /// `l{b|h|w|d}[u] dst, off(base)` — integer load, sign- or zero-extended.
    Load {
        dst: IntReg,
        base: IntReg,
        off: i32,
        width: Width,
        signed: bool,
    },
    /// `l.d dst, off(base)` — floating-point load (8 bytes).
    LoadF { dst: FpReg, base: IntReg, off: i32 },
    /// `s{b|h|w|d} src, off(base)` — integer store.
    Store {
        src: IntReg,
        base: IntReg,
        off: i32,
        width: Width,
    },
    /// `s.d src, off(base)` — floating-point store.
    StoreF { src: FpReg, base: IntReg, off: i32 },
    /// `pref off(base)` — prefetch the containing cache block; never faults,
    /// has no architectural effect.
    Prefetch { base: IntReg, off: i32 },

    // ---- decoupled queue operations (emitted by the stream separator) ----
    /// `l{b|h|w|d}[u].q LDQ, off(base)` — load directly into a queue
    /// (the paper's `l.d $LDQ, 88($9)` form). Push occurs at commit.
    LoadQ {
        q: Queue,
        base: IntReg,
        off: i32,
        width: Width,
        signed: bool,
    },
    /// `s{b|h|w|d}.q SDQ, off(base)` — store whose data is popped from a
    /// queue at commit (the paper's `s.d $SDQ, 0($13)` form).
    StoreQ {
        q: Queue,
        base: IntReg,
        off: i32,
        width: Width,
    },
    /// `send Q, src` — push an integer register to a queue at commit.
    SendI { q: Queue, src: IntReg },
    /// `send.d Q, src` — push an fp register's bits to a queue at commit.
    SendF { q: Queue, src: FpReg },
    /// `recv dst, Q` — pop a queue into an integer register.
    RecvI { q: Queue, dst: IntReg },
    /// `recv.d dst, Q` — pop a queue into an fp register.
    RecvF { q: Queue, dst: FpReg },
    /// `putscq` — CMP end-of-iteration marker; blocks when the slip-control
    /// semaphore is full, bounding prefetch run-ahead.
    PutScq,
    /// `getscq` — AP end-of-iteration marker; decrements the slip-control
    /// semaphore (never blocks).
    GetScq,

    // ---- control ----
    /// `bxx a, b, target`.
    Branch {
        cond: BranchCond,
        a: IntReg,
        b: IntReg,
        target: u32,
    },
    /// `j target`.
    Jump { target: u32 },
    /// `cbr target` — consume-branch: pops a branch-outcome token from the
    /// Control Queue; taken ⇒ jump to `target`. Only appears in Computation
    /// Streams produced by the separator.
    CBranch { target: u32 },
    /// `halt` — terminate the program.
    Halt,
    /// `nop`.
    Nop,
}

impl Instr {
    /// The register defined by this instruction, if any. No DISA
    /// instruction defines more than one register.
    pub fn def(&self) -> Option<RegRef> {
        match *self {
            Instr::IntOp { dst, .. }
            | Instr::Li { dst, .. }
            | Instr::FpCmp { dst, .. }
            | Instr::CvtFi { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::RecvI { dst, .. } => (!dst.is_zero()).then_some(RegRef::Int(dst)),
            Instr::FpBin { dst, .. }
            | Instr::FpUn { dst, .. }
            | Instr::CvtIf { dst, .. }
            | Instr::LoadF { dst, .. }
            | Instr::RecvF { dst, .. } => Some(RegRef::Fp(dst)),
            _ => None,
        }
    }

    /// The registers used (read) by this instruction, as a fixed array of
    /// up to three entries (allocation-free for the hot timing paths).
    pub fn uses(&self) -> [Option<RegRef>; 3] {
        fn i(r: IntReg) -> Option<RegRef> {
            (!r.is_zero()).then_some(RegRef::Int(r))
        }
        fn f(r: FpReg) -> Option<RegRef> {
            Some(RegRef::Fp(r))
        }
        match *self {
            Instr::IntOp { a, b, .. } => [i(a), b.reg().and_then(i), None],
            Instr::Li { .. } => [None; 3],
            Instr::FpBin { a, b, .. } => [f(a), f(b), None],
            Instr::FpUn { a, .. } => [f(a), None, None],
            Instr::FpCmp { a, b, .. } => [f(a), f(b), None],
            Instr::CvtIf { src, .. } => [i(src), None, None],
            Instr::CvtFi { src, .. } => [f(src), None, None],
            Instr::Load { base, .. }
            | Instr::LoadF { base, .. }
            | Instr::Prefetch { base, .. }
            | Instr::LoadQ { base, .. }
            | Instr::StoreQ { base, .. } => [i(base), None, None],
            Instr::Store { src, base, .. } => [i(src), i(base), None],
            Instr::StoreF { src, base, .. } => [f(src), i(base), None],
            Instr::SendI { src, .. } => [i(src), None, None],
            Instr::SendF { src, .. } => [f(src), None, None],
            Instr::RecvI { .. } | Instr::RecvF { .. } => [None; 3],
            Instr::PutScq | Instr::GetScq => [None; 3],
            Instr::Branch { a, b, .. } => [i(a), i(b), None],
            Instr::Jump { .. } | Instr::CBranch { .. } | Instr::Halt | Instr::Nop => [None; 3],
        }
    }

    /// True for control-transfer instructions (branches, jumps,
    /// consume-branches and halt).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. } | Instr::Jump { .. } | Instr::CBranch { .. } | Instr::Halt
        )
    }

    /// True for conditional control (can fall through or jump).
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Instr::Branch { .. } | Instr::CBranch { .. })
    }

    /// The static branch/jump target, if any.
    pub fn target(&self) -> Option<u32> {
        match *self {
            Instr::Branch { target, .. } | Instr::Jump { target } | Instr::CBranch { target } => {
                Some(target)
            }
            _ => None,
        }
    }

    /// Rewrites the static branch/jump target (used when the stream
    /// separator re-lays-out a stream).
    pub fn set_target(&mut self, t: u32) {
        match self {
            Instr::Branch { target, .. } | Instr::Jump { target } | Instr::CBranch { target } => {
                *target = t
            }
            _ => panic!("set_target on non-control instruction"),
        }
    }

    /// True if this instruction reads or writes data memory (prefetches
    /// included).
    pub fn is_mem(&self) -> bool {
        self.is_load() || self.is_store() || matches!(self, Instr::Prefetch { .. })
    }

    /// True for loads that return data (architectural loads; prefetches are
    /// not loads).
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. } | Instr::LoadF { .. } | Instr::LoadQ { .. }
        )
    }

    /// True for stores.
    pub fn is_store(&self) -> bool {
        matches!(
            self,
            Instr::Store { .. } | Instr::StoreF { .. } | Instr::StoreQ { .. }
        )
    }

    /// The access width for memory instructions (`D` for prefetch).
    pub fn mem_width(&self) -> Option<Width> {
        match *self {
            Instr::Load { width, .. }
            | Instr::Store { width, .. }
            | Instr::LoadQ { width, .. }
            | Instr::StoreQ { width, .. } => Some(width),
            Instr::LoadF { .. } | Instr::StoreF { .. } => Some(Width::D),
            Instr::Prefetch { .. } => Some(Width::D),
            _ => None,
        }
    }

    /// Base register and offset for memory instructions.
    pub fn mem_addr_operands(&self) -> Option<(IntReg, i32)> {
        match *self {
            Instr::Load { base, off, .. }
            | Instr::LoadF { base, off, .. }
            | Instr::Store { base, off, .. }
            | Instr::StoreF { base, off, .. }
            | Instr::Prefetch { base, off }
            | Instr::LoadQ { base, off, .. }
            | Instr::StoreQ { base, off, .. } => Some((base, off)),
            _ => None,
        }
    }

    /// The queue this instruction pops from, if any. Pops are destructive
    /// and must execute non-speculatively and in program order per queue.
    pub fn queue_pop(&self) -> Option<Queue> {
        match *self {
            Instr::RecvI { q, .. } | Instr::RecvF { q, .. } | Instr::StoreQ { q, .. } => Some(q),
            Instr::CBranch { .. } => Some(Queue::Cq),
            Instr::GetScq => Some(Queue::Scq),
            _ => None,
        }
    }

    /// The queue this instruction pushes to, if any. Pushes occur at
    /// in-order commit. (Branch CQ pushes are decided by the annotation,
    /// not by the instruction itself — see [`crate::annot::Annot::push_cq`].)
    pub fn queue_push(&self) -> Option<Queue> {
        match *self {
            Instr::SendI { q, .. } | Instr::SendF { q, .. } | Instr::LoadQ { q, .. } => Some(q),
            Instr::PutScq => Some(Queue::Scq),
            _ => None,
        }
    }

    /// How this instruction forms the integer register it defines, for
    /// address-disambiguation analysis. `None` when no integer register is
    /// defined. Wrapping arithmetic mirrors the interpreter.
    pub fn addr_form(&self) -> Option<(IntReg, AddrForm)> {
        let dst = match self.def() {
            Some(RegRef::Int(r)) => r,
            _ => return None,
        };
        let form = match *self {
            Instr::Li { imm, .. } => AddrForm::Const { imm },
            Instr::IntOp {
                op: IntOp::Add,
                a,
                b: Src::Imm(k),
                ..
            } => AddrForm::Offset { src: a, imm: k },
            Instr::IntOp {
                op: IntOp::Sub,
                a,
                b: Src::Imm(k),
                ..
            } => AddrForm::Offset {
                src: a,
                imm: k.wrapping_neg(),
            },
            Instr::IntOp {
                op: IntOp::Add,
                a,
                b: Src::Reg(b),
                ..
            } => AddrForm::Sum { a, b },
            _ => AddrForm::Opaque,
        };
        Some((dst, form))
    }

    /// True for floating-point instructions (execute on FP units, which the
    /// Access Processor does not have).
    pub fn is_fp(&self) -> bool {
        matches!(
            self,
            Instr::FpBin { .. }
                | Instr::FpUn { .. }
                | Instr::FpCmp { .. }
                | Instr::CvtIf { .. }
                | Instr::CvtFi { .. }
                | Instr::LoadF { .. }
                | Instr::StoreF { .. }
                | Instr::SendF { .. }
                | Instr::RecvF { .. }
        )
    }

    /// True for FP *computation* (excludes FP loads/stores/sends/receives,
    /// which only move bits). The stream separator keeps exactly these in
    /// the Computation Stream.
    pub fn is_fp_compute(&self) -> bool {
        matches!(
            self,
            Instr::FpBin { .. }
                | Instr::FpUn { .. }
                | Instr::FpCmp { .. }
                | Instr::CvtIf { .. }
                | Instr::CvtFi { .. }
        )
    }

    /// The functional-unit class this instruction occupies.
    pub fn fu_class(&self) -> FuClass {
        match self {
            Instr::IntOp { op, .. } if op.is_long_latency() => FuClass::IntMul,
            Instr::IntOp { .. } | Instr::Li { .. } => FuClass::IntAlu,
            Instr::FpBin { op, .. } if op.is_long_latency() => FuClass::FpMul,
            Instr::FpBin {
                op: FpBinOp::Mul, ..
            } => FuClass::FpMul,
            Instr::FpBin { .. } => FuClass::FpAlu,
            Instr::FpUn {
                op: FpUnOp::Sqrt, ..
            } => FuClass::FpMul,
            Instr::FpUn { .. }
            | Instr::FpCmp { .. }
            | Instr::CvtIf { .. }
            | Instr::CvtFi { .. } => FuClass::FpAlu,
            Instr::Load { .. }
            | Instr::LoadF { .. }
            | Instr::Store { .. }
            | Instr::StoreF { .. }
            | Instr::Prefetch { .. }
            | Instr::LoadQ { .. }
            | Instr::StoreQ { .. } => FuClass::Mem,
            Instr::SendI { .. }
            | Instr::SendF { .. }
            | Instr::RecvI { .. }
            | Instr::RecvF { .. }
            | Instr::PutScq
            | Instr::GetScq
            | Instr::Nop => FuClass::IntAlu,
            Instr::Branch { .. } | Instr::Jump { .. } | Instr::CBranch { .. } | Instr::Halt => {
                FuClass::Branch
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u8) -> IntReg {
        IntReg::new(n)
    }

    #[test]
    fn def_and_uses_int_op() {
        let i = Instr::IntOp {
            op: IntOp::Add,
            dst: r(3),
            a: r(1),
            b: Src::Reg(r(2)),
        };
        assert_eq!(i.def(), Some(RegRef::Int(r(3))));
        let uses = i.uses();
        assert_eq!(uses[0], Some(RegRef::Int(r(1))));
        assert_eq!(uses[1], Some(RegRef::Int(r(2))));
        assert_eq!(uses[2], None);
    }

    #[test]
    fn zero_register_never_def_or_use() {
        let i = Instr::IntOp {
            op: IntOp::Add,
            dst: r(0),
            a: r(0),
            b: Src::Reg(r(0)),
        };
        assert_eq!(i.def(), None);
        assert_eq!(i.uses(), [None; 3]);
    }

    #[test]
    fn load_classification() {
        let l = Instr::Load {
            dst: r(5),
            base: r(6),
            off: 8,
            width: Width::D,
            signed: true,
        };
        assert!(l.is_mem() && l.is_load() && !l.is_store());
        assert_eq!(l.mem_width(), Some(Width::D));
        assert_eq!(l.mem_addr_operands(), Some((r(6), 8)));
        assert_eq!(l.fu_class(), FuClass::Mem);
    }

    #[test]
    fn queue_pop_push_classification() {
        assert_eq!(
            Instr::RecvI {
                q: Queue::Ldq,
                dst: r(1)
            }
            .queue_pop(),
            Some(Queue::Ldq)
        );
        assert_eq!(
            Instr::SendI {
                q: Queue::Sdq,
                src: r(1)
            }
            .queue_push(),
            Some(Queue::Sdq)
        );
        assert_eq!(Instr::CBranch { target: 0 }.queue_pop(), Some(Queue::Cq));
        assert_eq!(Instr::PutScq.queue_push(), Some(Queue::Scq));
        assert_eq!(Instr::GetScq.queue_pop(), Some(Queue::Scq));
        let lq = Instr::LoadQ {
            q: Queue::Ldq,
            base: r(2),
            off: 0,
            width: Width::D,
            signed: true,
        };
        assert_eq!(lq.queue_push(), Some(Queue::Ldq));
        assert!(lq.is_load());
        let sq = Instr::StoreQ {
            q: Queue::Sdq,
            base: r(2),
            off: 0,
            width: Width::D,
        };
        assert_eq!(sq.queue_pop(), Some(Queue::Sdq));
        assert!(sq.is_store());
    }

    #[test]
    fn control_classification() {
        let b = Instr::Branch {
            cond: BranchCond::Ne,
            a: r(1),
            b: r(0),
            target: 7,
        };
        assert!(b.is_control() && b.is_cond_branch());
        assert_eq!(b.target(), Some(7));
        assert!(Instr::Halt.is_control());
        assert!(!Instr::Halt.is_cond_branch());
        let mut j = Instr::Jump { target: 3 };
        j.set_target(9);
        assert_eq!(j.target(), Some(9));
    }

    #[test]
    fn fp_classification() {
        let m = Instr::FpBin {
            op: FpBinOp::Mul,
            dst: FpReg::new(1),
            a: FpReg::new(2),
            b: FpReg::new(3),
        };
        assert!(m.is_fp() && m.is_fp_compute());
        assert_eq!(m.fu_class(), FuClass::FpMul);
        let lf = Instr::LoadF {
            dst: FpReg::new(1),
            base: r(2),
            off: 0,
        };
        assert!(lf.is_fp() && !lf.is_fp_compute());
        assert_eq!(lf.fu_class(), FuClass::Mem);
    }

    #[test]
    fn branch_cond_eval() {
        assert!(BranchCond::Eq.eval(3, 3));
        assert!(BranchCond::Ne.eval(3, 4));
        assert!(BranchCond::Lt.eval(-1, 0));
        assert!(!BranchCond::Ltu.eval(-1, 0));
        assert!(BranchCond::Geu.eval(-1, 0));
        assert!(BranchCond::Ge.eval(0, 0));
    }
}
