//! Functional (architectural) execution of DISA programs.
//!
//! The single-step semantics in [`step_at`] are shared by:
//!
//! * the sequential reference interpreter [`Interp`] (used to produce golden
//!   results and cache-profiling traces), and
//! * the decoupled functional executor in the `hidisc` crate, which supplies
//!   a real [`QueueEnv`] for the architectural queues.
//!
//! A step either completes, halts, or reports [`Step::Blocked`] (a queue pop
//! from an empty queue / push to a full queue). Blocked steps have **no**
//! architectural effect and can be retried.

use crate::annot::Annot;
use crate::instr::{Instr, Src, Width};
use crate::mem::Memory;
use crate::program::Program;
use crate::reg::{FpReg, IntReg, Queue, NUM_FP_REGS, NUM_INT_REGS};
use crate::{IsaError, Result};

/// The two architectural register files of one processor.
#[derive(Debug, Clone, PartialEq)]
pub struct RegFile {
    int: [i64; NUM_INT_REGS],
    fp: [f64; NUM_FP_REGS],
}

impl Default for RegFile {
    fn default() -> Self {
        RegFile {
            int: [0; NUM_INT_REGS],
            fp: [0.0; NUM_FP_REGS],
        }
    }
}

impl RegFile {
    /// Creates a zeroed register file.
    pub fn new() -> RegFile {
        RegFile::default()
    }

    /// Reads an integer register (`r0` reads 0).
    #[inline]
    pub fn get_i(&self, r: IntReg) -> i64 {
        self.int[r.index()]
    }

    /// Writes an integer register (writes to `r0` are discarded).
    #[inline]
    pub fn set_i(&mut self, r: IntReg, v: i64) {
        if !r.is_zero() {
            self.int[r.index()] = v;
        }
    }

    /// Reads a floating-point register.
    #[inline]
    pub fn get_f(&self, r: FpReg) -> f64 {
        self.fp[r.index()]
    }

    /// Writes a floating-point register.
    #[inline]
    pub fn set_f(&mut self, r: FpReg, v: f64) {
        self.fp[r.index()] = v;
    }

    /// Serialises both register files for the checkpoint format.
    pub fn save_state(&self, e: &mut crate::wire::Enc) {
        for &v in &self.int {
            e.i64(v);
        }
        for &v in &self.fp {
            e.f64(v);
        }
    }

    /// Restores both register files from a
    /// [`save_state`](Self::save_state) stream.
    pub fn load_state(&mut self, d: &mut crate::wire::Dec) -> crate::wire::WireResult<()> {
        for v in self.int.iter_mut() {
            *v = d.i64()?;
        }
        for v in self.fp.iter_mut() {
            *v = d.f64()?;
        }
        Ok(())
    }
}

/// Kind of memory event reported to tracing hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemKind {
    Load,
    Store,
    Prefetch,
}

/// A memory access performed by a functional step, reported to hooks
/// (used by the cache-profiling pass of the HiDISC compiler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemEvent {
    /// Static instruction index that performed the access.
    pub pc: u32,
    /// Effective byte address.
    pub addr: u64,
    /// Access width.
    pub width: Width,
    /// Load, store or prefetch.
    pub kind: MemKind,
}

/// Result of attempting a queue pop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopResult {
    /// A value was popped (raw 64 bits).
    Value(u64),
    /// The queue is empty; the instruction must retry.
    Blocked,
}

/// Result of attempting a queue push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushResult {
    Done,
    /// The queue is full; the instruction must retry.
    Blocked,
}

/// Environment providing the architectural queues to [`step_at`].
pub trait QueueEnv {
    /// Attempts to pop from `q`.
    fn pop(&mut self, q: Queue) -> Result<PopResult>;
    /// Attempts to push `v` to `q`.
    fn push(&mut self, q: Queue, v: u64) -> Result<PushResult>;
}

/// Queue environment for sequential programs: any queue operation is an
/// error (a correct sequential program contains none).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoQueues;

impl QueueEnv for NoQueues {
    fn pop(&mut self, q: Queue) -> Result<PopResult> {
        Err(IsaError::Exec {
            pc: 0,
            msg: format!("queue pop ({q}) in sequential program"),
        })
    }
    fn push(&mut self, q: Queue, _v: u64) -> Result<PushResult> {
        Err(IsaError::Exec {
            pc: 0,
            msg: format!("queue push ({q}) in sequential program"),
        })
    }
}

/// Outcome of one functional step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Execution continues at this pc.
    Next(u32),
    /// A `halt` was executed.
    Halt,
    /// The instruction is blocked on a queue; retry later. No state
    /// changed.
    Blocked,
}

/// Converts f64 to i64 with saturating/NaN-to-zero semantics (matches the
/// timing models).
#[inline]
pub fn f64_to_i64(v: f64) -> i64 {
    if v.is_nan() {
        0
    } else if v >= i64::MAX as f64 {
        i64::MAX
    } else if v <= i64::MIN as f64 {
        i64::MIN
    } else {
        v as i64
    }
}

/// Executes the instruction at `pc` of `prog` against the given register
/// file, memory and queue environment, reporting memory accesses to `hook`.
///
/// The annotation at `pc` participates: a control instruction with
/// [`Annot::push_cq`] pushes its outcome token to the Control Queue.
/// Blocked steps are effect-free.
pub fn step_at(
    prog: &Program,
    pc: u32,
    regs: &mut RegFile,
    mem: &mut Memory,
    env: &mut impl QueueEnv,
    hook: &mut impl FnMut(MemEvent),
) -> Result<Step> {
    let i = *prog.get(pc).ok_or(IsaError::Exec {
        pc,
        msg: "pc out of range".into(),
    })?;
    let annot: Annot = *prog.annot(pc);
    let exec_err = |msg: String| IsaError::Exec { pc, msg };
    let next = Step::Next(pc + 1);

    match i {
        Instr::IntOp { op, dst, a, b } => {
            let bv = match b {
                Src::Reg(r) => regs.get_i(r),
                Src::Imm(v) => v,
            };
            let v = op.eval(regs.get_i(a), bv);
            regs.set_i(dst, v);
            Ok(next)
        }
        Instr::Li { dst, imm } => {
            regs.set_i(dst, imm);
            Ok(next)
        }
        Instr::FpBin { op, dst, a, b } => {
            let v = op.eval(regs.get_f(a), regs.get_f(b));
            regs.set_f(dst, v);
            Ok(next)
        }
        Instr::FpUn { op, dst, a } => {
            let v = op.eval(regs.get_f(a));
            regs.set_f(dst, v);
            Ok(next)
        }
        Instr::FpCmp { op, dst, a, b } => {
            let v = op.eval(regs.get_f(a), regs.get_f(b)) as i64;
            regs.set_i(dst, v);
            Ok(next)
        }
        Instr::CvtIf { dst, src } => {
            regs.set_f(dst, regs.get_i(src) as f64);
            Ok(next)
        }
        Instr::CvtFi { dst, src } => {
            regs.set_i(dst, f64_to_i64(regs.get_f(src)));
            Ok(next)
        }
        Instr::Load {
            dst,
            base,
            off,
            width,
            signed,
        } => {
            let addr = (regs.get_i(base) as u64).wrapping_add_signed(off as i64);
            hook(MemEvent {
                pc,
                addr,
                width,
                kind: MemKind::Load,
            });
            let v = mem.load(addr, width, signed)?;
            regs.set_i(dst, v);
            Ok(next)
        }
        Instr::LoadF { dst, base, off } => {
            let addr = (regs.get_i(base) as u64).wrapping_add_signed(off as i64);
            hook(MemEvent {
                pc,
                addr,
                width: Width::D,
                kind: MemKind::Load,
            });
            regs.set_f(dst, mem.read_f64(addr)?);
            Ok(next)
        }
        Instr::Store {
            src,
            base,
            off,
            width,
        } => {
            let addr = (regs.get_i(base) as u64).wrapping_add_signed(off as i64);
            hook(MemEvent {
                pc,
                addr,
                width,
                kind: MemKind::Store,
            });
            mem.store(addr, width, regs.get_i(src))?;
            Ok(next)
        }
        Instr::StoreF { src, base, off } => {
            let addr = (regs.get_i(base) as u64).wrapping_add_signed(off as i64);
            hook(MemEvent {
                pc,
                addr,
                width: Width::D,
                kind: MemKind::Store,
            });
            mem.write_f64(addr, regs.get_f(src))?;
            Ok(next)
        }
        Instr::Prefetch { base, off } => {
            let addr = (regs.get_i(base) as u64).wrapping_add_signed(off as i64);
            hook(MemEvent {
                pc,
                addr,
                width: Width::D,
                kind: MemKind::Prefetch,
            });
            Ok(next)
        }
        Instr::LoadQ {
            q,
            base,
            off,
            width,
            signed,
        } => {
            let addr = (regs.get_i(base) as u64).wrapping_add_signed(off as i64);
            let v = mem.load(addr, width, signed)?;
            match env.push(q, v as u64)? {
                PushResult::Done => {
                    hook(MemEvent {
                        pc,
                        addr,
                        width,
                        kind: MemKind::Load,
                    });
                    Ok(next)
                }
                PushResult::Blocked => Ok(Step::Blocked),
            }
        }
        Instr::StoreQ {
            q,
            base,
            off,
            width,
        } => match env.pop(q)? {
            PopResult::Value(v) => {
                let addr = (regs.get_i(base) as u64).wrapping_add_signed(off as i64);
                hook(MemEvent {
                    pc,
                    addr,
                    width,
                    kind: MemKind::Store,
                });
                mem.store(addr, width, v as i64)?;
                Ok(next)
            }
            PopResult::Blocked => Ok(Step::Blocked),
        },
        Instr::SendI { q, src } => match env.push(q, regs.get_i(src) as u64)? {
            PushResult::Done => Ok(next),
            PushResult::Blocked => Ok(Step::Blocked),
        },
        Instr::SendF { q, src } => match env.push(q, regs.get_f(src).to_bits())? {
            PushResult::Done => Ok(next),
            PushResult::Blocked => Ok(Step::Blocked),
        },
        Instr::RecvI { q, dst } => match env.pop(q)? {
            PopResult::Value(v) => {
                regs.set_i(dst, v as i64);
                Ok(next)
            }
            PopResult::Blocked => Ok(Step::Blocked),
        },
        Instr::RecvF { q, dst } => match env.pop(q)? {
            PopResult::Value(v) => {
                regs.set_f(dst, f64::from_bits(v));
                Ok(next)
            }
            PopResult::Blocked => Ok(Step::Blocked),
        },
        Instr::PutScq => match env.push(Queue::Scq, 1)? {
            PushResult::Done => Ok(next),
            PushResult::Blocked => Ok(Step::Blocked),
        },
        Instr::GetScq => match env.pop(Queue::Scq)? {
            PopResult::Value(_) => Ok(next),
            PopResult::Blocked => Ok(Step::Blocked),
        },
        Instr::Branch { cond, a, b, target } => {
            let taken = cond.eval(regs.get_i(a), regs.get_i(b));
            if annot.push_cq {
                match env.push(Queue::Cq, taken as u64)? {
                    PushResult::Done => {}
                    PushResult::Blocked => return Ok(Step::Blocked),
                }
            }
            Ok(Step::Next(if taken { target } else { pc + 1 }))
        }
        Instr::Jump { target } => {
            if annot.push_cq {
                match env.push(Queue::Cq, 1)? {
                    PushResult::Done => {}
                    PushResult::Blocked => return Ok(Step::Blocked),
                }
            }
            Ok(Step::Next(target))
        }
        Instr::CBranch { target } => match env.pop(Queue::Cq)? {
            PopResult::Value(v) => Ok(Step::Next(if v != 0 { target } else { pc + 1 })),
            PopResult::Blocked => Ok(Step::Blocked),
        },
        Instr::Halt => {
            if annot.push_cq {
                // A halting stream tells its peer the program is over; the
                // peer's matching instruction is its own halt, so no token
                // is needed. Guarded here for completeness.
                let _ = env.push(Queue::Cq, 0)?;
            }
            Ok(Step::Halt)
        }
        Instr::Nop => Ok(next),
        #[allow(unreachable_patterns)]
        _ => Err(exec_err("unimplemented instruction".into())),
    }
}

/// Statistics from a sequential functional run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Dynamic instructions executed (the "useful work" measure used for
    /// IPC across all machine models).
    pub instrs: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Dynamic conditional branches.
    pub branches: u64,
    /// ... of which taken.
    pub taken: u64,
}

/// Sequential reference interpreter.
///
/// Runs a conventional (queue-free) program to completion, producing the
/// golden architectural state and the dynamic-instruction statistics used
/// as the work measure by every timing model.
#[derive(Debug)]
pub struct Interp<'a> {
    /// The program being executed.
    pub prog: &'a Program,
    /// Register state.
    pub regs: RegFile,
    /// Memory state (architectural).
    pub mem: Memory,
    /// Next instruction to execute.
    pub pc: u32,
    /// Set after `halt`.
    pub halted: bool,
    /// Execution statistics.
    pub stats: RunStats,
}

impl<'a> Interp<'a> {
    /// Creates an interpreter over `prog` with the given initial memory.
    pub fn new(prog: &'a Program, mem: Memory) -> Interp<'a> {
        Interp {
            prog,
            regs: RegFile::new(),
            mem,
            pc: 0,
            halted: false,
            stats: RunStats::default(),
        }
    }

    /// Sets an integer register (for passing workload parameters).
    pub fn set_reg(&mut self, r: IntReg, v: i64) -> &mut Self {
        self.regs.set_i(r, v);
        self
    }

    /// Runs to `halt`, erroring after `max_steps` instructions (runaway
    /// guard).
    pub fn run(&mut self, max_steps: u64) -> Result<RunStats> {
        self.run_with_hook(max_steps, &mut |_| {})
    }

    /// Runs to `halt`, reporting every memory access to `hook`.
    pub fn run_with_hook(
        &mut self,
        max_steps: u64,
        hook: &mut impl FnMut(MemEvent),
    ) -> Result<RunStats> {
        let mut env = NoQueues;
        while !self.halted {
            if self.stats.instrs >= max_steps {
                return Err(IsaError::Exec {
                    pc: self.pc,
                    msg: format!("exceeded max steps ({max_steps})"),
                });
            }
            let instr = self.prog.get(self.pc).copied();
            match step_at(
                self.prog,
                self.pc,
                &mut self.regs,
                &mut self.mem,
                &mut env,
                hook,
            )? {
                Step::Next(n) => {
                    self.stats.instrs += 1;
                    if let Some(i) = instr {
                        if i.is_load() {
                            self.stats.loads += 1;
                        } else if i.is_store() {
                            self.stats.stores += 1;
                        } else if i.is_cond_branch() {
                            self.stats.branches += 1;
                            if n != self.pc + 1 {
                                self.stats.taken += 1;
                            }
                        }
                    }
                    self.pc = n;
                }
                Step::Halt => {
                    self.stats.instrs += 1;
                    self.halted = true;
                }
                Step::Blocked => {
                    return Err(IsaError::Exec {
                        pc: self.pc,
                        msg: "sequential program blocked on a queue".into(),
                    })
                }
            }
        }
        Ok(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_src(src: &str) -> Interp<'_> {
        // Leak is fine in tests: keeps the borrow simple.
        let prog = Box::leak(Box::new(assemble("t", src).unwrap()));
        let mut i = Interp::new(prog, Memory::new());
        i.run(1_000_000).unwrap();
        // move out
        Interp {
            prog: i.prog,
            regs: i.regs,
            mem: i.mem,
            pc: i.pc,
            halted: i.halted,
            stats: i.stats,
        }
    }

    #[test]
    fn arithmetic_loop_sums() {
        let i = run_src(
            r"
            li r1, 0
            li r2, 10
        loop:
            add r1, r1, r2
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ",
        );
        assert_eq!(i.regs.get_i(IntReg::new(1)), 55);
        assert_eq!(i.stats.branches, 10);
        assert_eq!(i.stats.taken, 9);
    }

    #[test]
    fn memory_round_trip_and_stats() {
        let i = run_src(
            r"
            li r1, 0x1000
            li r2, 77
            sd r2, 0(r1)
            ld r3, 0(r1)
            add r4, r3, 1
            sd r4, 8(r1)
            halt
        ",
        );
        assert_eq!(i.mem.read_i64(0x1008).unwrap(), 78);
        assert_eq!(i.stats.loads, 1);
        assert_eq!(i.stats.stores, 2);
    }

    #[test]
    fn fp_pipeline() {
        let i = run_src(
            r"
            li r1, 3
            cvt.d.l f1, r1
            mul.d f2, f1, f1
            sqrt.d f3, f2
            cvt.l.d r2, f3
            halt
        ",
        );
        assert_eq!(i.regs.get_i(IntReg::new(2)), 3);
    }

    #[test]
    fn fp_cmp_sets_int() {
        let i = run_src(
            r"
            li r1, 1
            cvt.d.l f1, r1
            li r2, 2
            cvt.d.l f2, r2
            c.lt.d r3, f1, f2
            c.eq.d r4, f1, f2
            halt
        ",
        );
        assert_eq!(i.regs.get_i(IntReg::new(3)), 1);
        assert_eq!(i.regs.get_i(IntReg::new(4)), 0);
    }

    #[test]
    fn queue_ops_rejected_sequentially() {
        let prog = assemble("t", "recv r1, LDQ\nhalt").unwrap();
        let mut i = Interp::new(&prog, Memory::new());
        assert!(i.run(10).is_err());
    }

    #[test]
    fn step_limit_enforced() {
        let prog = assemble("t", "loop: j loop\nhalt").unwrap();
        let mut i = Interp::new(&prog, Memory::new());
        assert!(i.run(100).is_err());
    }

    #[test]
    fn mem_hook_sees_accesses() {
        let prog = assemble("t", "li r1, 0x2000\nld r2, 0(r1)\npref 8(r1)\nhalt").unwrap();
        let mut i = Interp::new(&prog, Memory::new());
        let mut events = Vec::new();
        i.run_with_hook(100, &mut |e| events.push(e)).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, MemKind::Load);
        assert_eq!(events[0].addr, 0x2000);
        assert_eq!(events[1].kind, MemKind::Prefetch);
        assert_eq!(events[1].addr, 0x2008);
    }

    #[test]
    fn cvt_fi_saturates() {
        assert_eq!(f64_to_i64(f64::NAN), 0);
        assert_eq!(f64_to_i64(1e300), i64::MAX);
        assert_eq!(f64_to_i64(-1e300), i64::MIN);
        assert_eq!(f64_to_i64(-2.9), -2);
    }
}
