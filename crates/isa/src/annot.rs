//! Per-instruction annotations.
//!
//! The HiDISC compiler communicates its stream-separation decisions to the
//! hardware through an annotation field attached to every instruction —
//! exactly as the paper does with the annotation field of the SimpleScalar
//! binary. The separator in the simulated front-end reads this field to
//! route instructions to the Computation or Access instruction queue, and
//! the Access Processor uses the trigger annotation to fork CMAS threads
//! onto the Cache Management Processor.

/// Predicted direction of a speculatively-executed conditional branch.
///
/// A branch annotated `speculate = Some(dir)` declares that the Access
/// Processor may *run ahead* down the `dir` successor while the branch
/// condition is still unresolved, squashing and replaying from the other
/// successor on a misprediction. The verifier (`hidisc-verify`) proves the
/// declared run-ahead window squash-safe; the annotation is the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecDir {
    /// Run ahead down the taken edge (the branch target) — the common case
    /// for loop-latch branches, speculating into the next iteration.
    Taken,
    /// Run ahead down the fall-through edge.
    NotTaken,
}

impl SpecDir {
    /// Short lowercase name used in diagnostics and reports.
    pub fn name(self) -> &'static str {
        match self {
            SpecDir::Taken => "taken",
            SpecDir::NotTaken => "not-taken",
        }
    }
}

/// A commit-time side effect that cannot be undone when a speculative
/// run-ahead window is squashed. Classified by [`Annot::squash_hazard`];
/// each variant maps to one `SP00x` diagnostic in `hidisc-verify`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SquashHazard {
    /// A push to a queue whose speculative tail entries cannot be flushed
    /// (anything but LDQ/CQ — see [`crate::reg::Queue::flushable`]).
    NonFlushablePush(crate::reg::Queue),
    /// A destructive pop: the producer will not re-send the popped value on
    /// replay (SDQ/CDQ data from the CP, or an SCQ semaphore decrement).
    DestructivePop(crate::reg::Queue),
    /// A CMAS thread fork: the CMP thread's prefetches and `putscq`
    /// increments cannot be recalled once forked.
    TriggerFork(u32),
}

/// Which stream an instruction belongs to after separation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Stream {
    /// Computation Stream: executed by the Computation Processor.
    #[default]
    Computation,
    /// Access Stream: executed by the Access Processor (all memory and
    /// control instructions plus their backward slices).
    Access,
}

/// The annotation field of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Annot {
    /// Stream this instruction was assigned to by the separator.
    pub stream: Stream,
    /// True if this instruction is part of a Cache Miss Access Slice.
    pub cmas: bool,
    /// If set, committing this instruction on the Access Processor forks
    /// CMAS thread `trigger` onto the CMP (with a copy of the AP's
    /// committed register file).
    pub trigger: Option<u32>,
    /// For control instructions in the Access Stream: push a branch-outcome
    /// token to the Control Queue at commit, to steer the Computation
    /// Stream's matching consume-branch.
    pub push_cq: bool,
    /// Marked by the cache-access profiler: this static load is a probable
    /// cache-miss instruction (a CMAS seed).
    pub probable_miss: bool,
    /// Slip control: committing this instruction decrements the SCQ
    /// semaphore (never blocking) — the compiler sets this on loop-latch
    /// branches of loops that have a CMAS thread, playing the role of the
    /// paper's `GET_SCQ` without perturbing the instruction layout.
    pub scq_get: bool,
    /// For conditional branches in the Access Stream: the compiler declares
    /// that the AP may run ahead down the given successor before the branch
    /// resolves (speculative slicing, Szafarczyk et al.). `None` — the
    /// default, and all the current separator ever emits — means the branch
    /// is a hard run-ahead barrier. `hidisc-verify` rejects programs whose
    /// declared windows are not squash-safe.
    pub speculate: Option<SpecDir>,
}

impl Annot {
    /// Annotation for an instruction in the given stream, everything else
    /// default.
    pub fn in_stream(stream: Stream) -> Annot {
        Annot {
            stream,
            ..Annot::default()
        }
    }

    /// The queues pushed when instruction `i` carrying this annotation
    /// commits: the instruction's own push plus the `push_cq` outcome
    /// token on Access-Stream control (which is an annotation, not an
    /// opcode). At most two entries; `None` slots are unused.
    pub fn queue_pushes(&self, i: &crate::instr::Instr) -> [Option<crate::reg::Queue>; 2] {
        [
            i.queue_push(),
            (self.push_cq && i.is_control()).then_some(crate::reg::Queue::Cq),
        ]
    }

    /// The queues popped when instruction `i` carrying this annotation
    /// commits: the instruction's own pop plus the `scq_get` slip-control
    /// decrement (an annotation on loop-latch branches, never an opcode in
    /// stream binaries).
    pub fn queue_pops(&self, i: &crate::instr::Instr) -> [Option<crate::reg::Queue>; 2] {
        let own = i.queue_pop();
        [
            own,
            (self.scq_get && own != Some(crate::reg::Queue::Scq)).then_some(crate::reg::Queue::Scq),
        ]
    }

    /// The first squash-unsafe commit-time side effect of instruction `i`
    /// under this annotation, if any — `None` means committing `i` inside a
    /// speculative run-ahead window can be fully undone by a queue-tail
    /// flush. This is the single source of truth the verifier's `SP00x`
    /// pass and the future speculative front-end share.
    pub fn squash_hazard(&self, i: &crate::instr::Instr) -> Option<SquashHazard> {
        if let Some(t) = self.trigger {
            return Some(SquashHazard::TriggerFork(t));
        }
        for q in self.queue_pushes(i).into_iter().flatten() {
            if !q.flushable() {
                return Some(SquashHazard::NonFlushablePush(q));
            }
        }
        // All pops are destructive: queue values are consumed exactly once,
        // so a squashed pop cannot be replayed (the producer moved on).
        if let Some(q) = self.queue_pops(i).into_iter().flatten().next() {
            return Some(SquashHazard::DestructivePop(q));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_computation_no_flags() {
        let a = Annot::default();
        assert_eq!(a.stream, Stream::Computation);
        assert!(!a.cmas && !a.push_cq && !a.probable_miss && !a.scq_get);
        assert_eq!(a.trigger, None);
    }

    #[test]
    fn in_stream_sets_only_stream() {
        let a = Annot::in_stream(Stream::Access);
        assert_eq!(a.stream, Stream::Access);
        assert!(!a.cmas);
    }
}
