//! Programs: instruction sequences with labels and annotations.

use crate::annot::Annot;
use crate::instr::Instr;
use crate::{IsaError, Result};
use std::collections::BTreeMap;
use std::fmt;

/// A label: symbolic name for an instruction index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Label {
    pub name: String,
    pub at: u32,
}

/// A DISA program: a flat sequence of instructions plus labels and the
/// per-instruction annotation field.
///
/// Execution begins at instruction 0 and ends at a `halt` (falling off the
/// end is an error caught by [`Program::validate`]).
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Optional human-readable name (benchmark name, stream name...).
    pub name: String,
    instrs: Vec<Instr>,
    annots: Vec<Annot>,
    labels: Vec<Label>,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Program {
        Program {
            name: name.into(),
            ..Program::default()
        }
    }

    /// Number of instructions.
    #[inline]
    pub fn len(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// True if the program has no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at `pc`. Panics if out of range.
    #[inline]
    pub fn instr(&self, pc: u32) -> &Instr {
        &self.instrs[pc as usize]
    }

    /// The instruction at `pc`, if in range.
    #[inline]
    pub fn get(&self, pc: u32) -> Option<&Instr> {
        self.instrs.get(pc as usize)
    }

    /// The annotation at `pc`. Panics if out of range.
    #[inline]
    pub fn annot(&self, pc: u32) -> &Annot {
        &self.annots[pc as usize]
    }

    /// Mutable annotation at `pc`.
    #[inline]
    pub fn annot_mut(&mut self, pc: u32) -> &mut Annot {
        &mut self.annots[pc as usize]
    }

    /// Mutable instruction at `pc` (used by the separator to retarget
    /// branches).
    #[inline]
    pub fn instr_mut(&mut self, pc: u32) -> &mut Instr {
        &mut self.instrs[pc as usize]
    }

    /// All instructions.
    #[inline]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// All annotations (aligned with [`Program::instrs`]).
    #[inline]
    pub fn annots(&self) -> &[Annot] {
        &self.annots
    }

    /// Appends an instruction with a default annotation; returns its index.
    pub fn push(&mut self, i: Instr) -> u32 {
        self.push_annotated(i, Annot::default())
    }

    /// Appends an instruction with an explicit annotation; returns its
    /// index.
    pub fn push_annotated(&mut self, i: Instr, a: Annot) -> u32 {
        let pc = self.len();
        self.instrs.push(i);
        self.annots.push(a);
        pc
    }

    /// Defines a label at instruction index `at`.
    pub fn add_label(&mut self, name: impl Into<String>, at: u32) -> Result<()> {
        let name = name.into();
        if self.labels.iter().any(|l| l.name == name) {
            return Err(IsaError::DuplicateLabel(name));
        }
        self.labels.push(Label { name, at });
        Ok(())
    }

    /// All labels, in definition order.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Looks up a label by name.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.iter().find(|l| l.name == name).map(|l| l.at)
    }

    /// The labels defined at a given instruction index.
    pub fn labels_at(&self, pc: u32) -> impl Iterator<Item = &str> {
        self.labels
            .iter()
            .filter(move |l| l.at == pc)
            .map(|l| l.name.as_str())
    }

    /// Checks structural invariants: every branch target is in range, the
    /// last instruction cannot fall off the end, labels point into the
    /// program.
    pub fn validate(&self) -> Result<()> {
        for (pc, i) in self.instrs.iter().enumerate() {
            if let Some(t) = i.target() {
                if t >= self.len() {
                    return Err(IsaError::Exec {
                        pc: pc as u32,
                        msg: format!("branch target {t} out of range (len {})", self.len()),
                    });
                }
            }
        }
        for l in &self.labels {
            if l.at > self.len() {
                return Err(IsaError::UndefinedLabel(format!(
                    "label {} points past end ({} > {})",
                    l.name,
                    l.at,
                    self.len()
                )));
            }
        }
        match self.instrs.last() {
            Some(Instr::Halt | Instr::Jump { .. }) => Ok(()),
            Some(_) => Err(IsaError::Exec {
                pc: self.len().saturating_sub(1),
                msg: "program can fall off the end (must end in halt or jump)".into(),
            }),
            None => Err(IsaError::Exec {
                pc: 0,
                msg: "empty program".into(),
            }),
        }
    }

    /// Counts instructions per stream annotation `(computation, access)`.
    pub fn stream_counts(&self) -> (usize, usize) {
        let access = self
            .annots
            .iter()
            .filter(|a| a.stream == crate::annot::Stream::Access)
            .count();
        (self.annots.len() - access, access)
    }
}

impl fmt::Display for Program {
    /// Disassembly listing with labels and annotation markers, suitable for
    /// re-assembly of the instruction text (labels are emitted; annotation
    /// markers appear as comments).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Group labels by address for O(1) lookup while printing.
        let mut by_addr: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
        for l in &self.labels {
            by_addr.entry(l.at).or_default().push(&l.name);
        }
        if !self.name.is_empty() {
            writeln!(f, "; program: {}", self.name)?;
        }
        for (pc, i) in self.instrs.iter().enumerate() {
            if let Some(ls) = by_addr.get(&(pc as u32)) {
                for l in ls {
                    writeln!(f, "{l}:")?;
                }
            }
            let a = &self.annots[pc];
            write!(f, "    {}", crate::encode::render_instr(i, self))?;
            let mut marks = Vec::new();
            if a.cmas {
                marks.push("cmas".to_string());
            }
            if let Some(t) = a.trigger {
                marks.push(format!("trigger={t}"));
            }
            if a.push_cq {
                marks.push("cq".to_string());
            }
            if a.probable_miss {
                marks.push("miss".to_string());
            }
            if a.scq_get {
                marks.push("scq".to_string());
            }
            if !marks.is_empty() {
                write!(f, "  ; [{}]", marks.join(","))?;
            }
            writeln!(f)?;
        }
        // Labels at end-of-program.
        if let Some(ls) = by_addr.get(&self.len()) {
            for l in ls {
                writeln!(f, "{l}:")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BranchCond, Instr};
    use crate::reg::IntReg;

    fn prog_with(instrs: Vec<Instr>) -> Program {
        let mut p = Program::new("t");
        for i in instrs {
            p.push(i);
        }
        p
    }

    #[test]
    fn push_and_index() {
        let mut p = Program::new("t");
        assert_eq!(p.push(Instr::Nop), 0);
        assert_eq!(p.push(Instr::Halt), 1);
        assert_eq!(p.len(), 2);
        assert!(matches!(p.instr(1), Instr::Halt));
        assert!(p.get(2).is_none());
    }

    #[test]
    fn labels() {
        let mut p = prog_with(vec![Instr::Nop, Instr::Halt]);
        p.add_label("loop", 1).unwrap();
        assert_eq!(p.label("loop"), Some(1));
        assert_eq!(p.label("nope"), None);
        assert!(p.add_label("loop", 0).is_err());
        assert_eq!(p.labels_at(1).collect::<Vec<_>>(), vec!["loop"]);
    }

    #[test]
    fn validate_rejects_out_of_range_target() {
        let p = prog_with(vec![
            Instr::Branch {
                cond: BranchCond::Eq,
                a: IntReg::ZERO,
                b: IntReg::ZERO,
                target: 9,
            },
            Instr::Halt,
        ]);
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_requires_halt_or_jump_at_end() {
        assert!(prog_with(vec![Instr::Nop]).validate().is_err());
        assert!(prog_with(vec![Instr::Halt]).validate().is_ok());
        assert!(prog_with(vec![Instr::Jump { target: 0 }])
            .validate()
            .is_ok());
        assert!(prog_with(vec![]).validate().is_err());
    }

    #[test]
    fn stream_counts() {
        let mut p = prog_with(vec![Instr::Nop, Instr::Nop, Instr::Halt]);
        p.annot_mut(1).stream = crate::annot::Stream::Access;
        assert_eq!(p.stream_counts(), (2, 1));
    }
}
