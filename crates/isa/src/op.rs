//! Arithmetic and comparison opcodes.

use std::fmt;

/// Integer ALU operations (three-address, register/register or
/// register/immediate form — see [`crate::instr::Instr::IntOp`]).
///
/// All arithmetic is 64-bit two's-complement and wraps on overflow, like the
/// SimpleScalar PISA integer ops with traps disabled. Division by zero and
/// `i64::MIN / -1` produce 0 rather than faulting so that speculative
/// execution down a wrong path can never crash the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntOp {
    Add,
    Sub,
    Mul,
    /// Signed division; division by zero yields 0.
    Div,
    /// Signed remainder; remainder by zero yields 0.
    Rem,
    And,
    Or,
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Set-if-less-than, signed: `dst = (a < b) as i64`.
    Slt,
    /// Set-if-less-than, unsigned.
    Sltu,
}

impl IntOp {
    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IntOp::Add => "add",
            IntOp::Sub => "sub",
            IntOp::Mul => "mul",
            IntOp::Div => "div",
            IntOp::Rem => "rem",
            IntOp::And => "and",
            IntOp::Or => "or",
            IntOp::Xor => "xor",
            IntOp::Sll => "sll",
            IntOp::Srl => "srl",
            IntOp::Sra => "sra",
            IntOp::Slt => "slt",
            IntOp::Sltu => "sltu",
        }
    }

    /// Parses an assembler mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<IntOp> {
        Some(match s {
            "add" => IntOp::Add,
            "sub" => IntOp::Sub,
            "mul" => IntOp::Mul,
            "div" => IntOp::Div,
            "rem" => IntOp::Rem,
            "and" => IntOp::And,
            "or" => IntOp::Or,
            "xor" => IntOp::Xor,
            "sll" => IntOp::Sll,
            "srl" => IntOp::Srl,
            "sra" => IntOp::Sra,
            "slt" => IntOp::Slt,
            "sltu" => IntOp::Sltu,
            _ => return None,
        })
    }

    /// Evaluates the operation on two 64-bit values.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            IntOp::Add => a.wrapping_add(b),
            IntOp::Sub => a.wrapping_sub(b),
            IntOp::Mul => a.wrapping_mul(b),
            IntOp::Div => {
                if b == 0 || (a == i64::MIN && b == -1) {
                    0
                } else {
                    a / b
                }
            }
            IntOp::Rem => {
                if b == 0 || (a == i64::MIN && b == -1) {
                    0
                } else {
                    a % b
                }
            }
            IntOp::And => a & b,
            IntOp::Or => a | b,
            IntOp::Xor => a ^ b,
            IntOp::Sll => ((a as u64) << (b as u64 & 63)) as i64,
            IntOp::Srl => ((a as u64) >> (b as u64 & 63)) as i64,
            IntOp::Sra => a >> (b as u64 & 63),
            IntOp::Slt => (a < b) as i64,
            IntOp::Sltu => ((a as u64) < (b as u64)) as i64,
        }
    }

    /// True for multiply/divide/remainder: these use the MUL/DIV functional
    /// unit and have a longer latency in the timing models.
    pub fn is_long_latency(self) -> bool {
        matches!(self, IntOp::Mul | IntOp::Div | IntOp::Rem)
    }
}

impl fmt::Display for IntOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Binary floating-point operations on `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
}

impl FpBinOp {
    /// Assembler mnemonic (MIPS-style `.d` suffix).
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpBinOp::Add => "add.d",
            FpBinOp::Sub => "sub.d",
            FpBinOp::Mul => "mul.d",
            FpBinOp::Div => "div.d",
            FpBinOp::Min => "min.d",
            FpBinOp::Max => "max.d",
        }
    }

    /// Parses an assembler mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<FpBinOp> {
        Some(match s {
            "add.d" => FpBinOp::Add,
            "sub.d" => FpBinOp::Sub,
            "mul.d" => FpBinOp::Mul,
            "div.d" => FpBinOp::Div,
            "min.d" => FpBinOp::Min,
            "max.d" => FpBinOp::Max,
            _ => return None,
        })
    }

    /// Evaluates the operation.
    #[inline]
    pub fn eval(self, a: f64, b: f64) -> f64 {
        match self {
            FpBinOp::Add => a + b,
            FpBinOp::Sub => a - b,
            FpBinOp::Mul => a * b,
            FpBinOp::Div => a / b,
            FpBinOp::Min => a.min(b),
            FpBinOp::Max => a.max(b),
        }
    }

    /// True for divide (long-latency FU).
    pub fn is_long_latency(self) -> bool {
        matches!(self, FpBinOp::Div)
    }
}

impl fmt::Display for FpBinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Unary floating-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpUnOp {
    Neg,
    Abs,
    Sqrt,
    /// Register move `dst = src`.
    Mov,
}

impl FpUnOp {
    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpUnOp::Neg => "neg.d",
            FpUnOp::Abs => "abs.d",
            FpUnOp::Sqrt => "sqrt.d",
            FpUnOp::Mov => "mov.d",
        }
    }

    /// Parses an assembler mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<FpUnOp> {
        Some(match s {
            "neg.d" => FpUnOp::Neg,
            "abs.d" => FpUnOp::Abs,
            "sqrt.d" => FpUnOp::Sqrt,
            "mov.d" => FpUnOp::Mov,
            _ => return None,
        })
    }

    /// Evaluates the operation.
    #[inline]
    pub fn eval(self, a: f64) -> f64 {
        match self {
            FpUnOp::Neg => -a,
            FpUnOp::Abs => a.abs(),
            FpUnOp::Sqrt => a.sqrt(),
            FpUnOp::Mov => a,
        }
    }
}

impl fmt::Display for FpUnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Floating-point comparisons producing a 0/1 integer result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpCmpOp {
    Eq,
    Lt,
    Le,
}

impl FpCmpOp {
    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpCmpOp::Eq => "c.eq.d",
            FpCmpOp::Lt => "c.lt.d",
            FpCmpOp::Le => "c.le.d",
        }
    }

    /// Parses an assembler mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<FpCmpOp> {
        Some(match s {
            "c.eq.d" => FpCmpOp::Eq,
            "c.lt.d" => FpCmpOp::Lt,
            "c.le.d" => FpCmpOp::Le,
            _ => return None,
        })
    }

    /// Evaluates the comparison (NaN compares false, as in IEEE 754 ordered
    /// comparisons).
    #[inline]
    pub fn eval(self, a: f64, b: f64) -> bool {
        match self {
            FpCmpOp::Eq => a == b,
            FpCmpOp::Lt => a < b,
            FpCmpOp::Le => a <= b,
        }
    }
}

impl fmt::Display for FpCmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ops_basic() {
        assert_eq!(IntOp::Add.eval(2, 3), 5);
        assert_eq!(IntOp::Sub.eval(2, 3), -1);
        assert_eq!(IntOp::Mul.eval(-4, 3), -12);
        assert_eq!(IntOp::Div.eval(7, 2), 3);
        assert_eq!(IntOp::Rem.eval(7, 2), 1);
        assert_eq!(IntOp::Slt.eval(-1, 0), 1);
        assert_eq!(IntOp::Sltu.eval(-1, 0), 0);
    }

    #[test]
    fn int_ops_wrap_and_guard() {
        assert_eq!(IntOp::Add.eval(i64::MAX, 1), i64::MIN);
        assert_eq!(IntOp::Div.eval(5, 0), 0);
        assert_eq!(IntOp::Div.eval(i64::MIN, -1), 0);
        assert_eq!(IntOp::Rem.eval(5, 0), 0);
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(IntOp::Sll.eval(1, 65), 2);
        assert_eq!(IntOp::Srl.eval(-1, 63), 1);
        assert_eq!(IntOp::Sra.eval(-8, 2), -2);
    }

    #[test]
    fn mnemonic_round_trip_int() {
        for op in [
            IntOp::Add,
            IntOp::Sub,
            IntOp::Mul,
            IntOp::Div,
            IntOp::Rem,
            IntOp::And,
            IntOp::Or,
            IntOp::Xor,
            IntOp::Sll,
            IntOp::Srl,
            IntOp::Sra,
            IntOp::Slt,
            IntOp::Sltu,
        ] {
            assert_eq!(IntOp::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn mnemonic_round_trip_fp() {
        for op in [
            FpBinOp::Add,
            FpBinOp::Sub,
            FpBinOp::Mul,
            FpBinOp::Div,
            FpBinOp::Min,
            FpBinOp::Max,
        ] {
            assert_eq!(FpBinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        for op in [FpUnOp::Neg, FpUnOp::Abs, FpUnOp::Sqrt, FpUnOp::Mov] {
            assert_eq!(FpUnOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        for op in [FpCmpOp::Eq, FpCmpOp::Lt, FpCmpOp::Le] {
            assert_eq!(FpCmpOp::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn fp_cmp_nan_is_false() {
        assert!(!FpCmpOp::Eq.eval(f64::NAN, f64::NAN));
        assert!(!FpCmpOp::Lt.eval(f64::NAN, 1.0));
        assert!(!FpCmpOp::Le.eval(1.0, f64::NAN));
    }
}
