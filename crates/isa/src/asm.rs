//! The DISA text assembler.
//!
//! Accepts the canonical syntax produced by the disassembler
//! ([`crate::encode::render_instr`]); round-trip `asm → text → asm` is
//! property-tested. Grammar, line oriented:
//!
//! ```text
//! line      := [label ':'] [instruction] [comment]
//! comment   := (';' | '#') .*
//! operand   := reg | fpreg | queue | imm | mem | labelref
//! mem       := imm '(' reg ')'
//! reg       := 'r' 0..31      fpreg := 'f' 0..31
//! queue     := 'LDQ' | 'SDQ' | 'CDQ' | 'CQ' | 'SCQ'
//! labelref  := identifier | '@' index
//! ```
//!
//! Example:
//!
//! ```
//! use hidisc_isa::asm::assemble;
//! let p = assemble("sum", r"
//!     li   r1, 0          ; acc = 0
//!     li   r2, 10
//! loop:
//!     add  r1, r1, r2
//!     sub  r2, r2, 1
//!     bne  r2, r0, loop
//!     halt
//! ").unwrap();
//! assert_eq!(p.len(), 6);
//! ```

use crate::instr::{BranchCond, Instr, Src, Width};
use crate::op::{FpBinOp, FpCmpOp, FpUnOp, IntOp};
use crate::program::Program;
use crate::reg::{FpReg, IntReg, Queue};
use crate::{IsaError, Result};

/// One parsed operand.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Int(IntReg),
    Fp(FpReg),
    Q(Queue),
    Imm(i64),
    Mem { off: i32, base: IntReg },
    Label(String),
}

fn parse_int_reg(s: &str) -> Option<IntReg> {
    let n: u8 = s.strip_prefix('r')?.parse().ok()?;
    IntReg::try_new(n)
}

fn parse_fp_reg(s: &str) -> Option<FpReg> {
    let n: u8 = s.strip_prefix('f')?.parse().ok()?;
    FpReg::try_new(n)
}

fn parse_queue(s: &str) -> Option<Queue> {
    Some(match s.to_ascii_uppercase().as_str() {
        "LDQ" => Queue::Ldq,
        "SDQ" => Queue::Sdq,
        "CDQ" => Queue::Cdq,
        "CQ" => Queue::Cq,
        "SCQ" => Queue::Scq,
        _ => return None,
    })
}

fn parse_imm(s: &str) -> Option<i64> {
    let (neg, t) = match s.strip_prefix('-') {
        Some(t) => (true, t),
        None => (false, s),
    };
    let v = if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(h, 16).ok()?
    } else {
        t.parse::<i64>().ok()?
    };
    Some(if neg { v.wrapping_neg() } else { v })
}

fn parse_operand(s: &str, line: usize) -> Result<Tok> {
    let s = s.trim();
    if let Some(open) = s.find('(') {
        // memory operand: off(base)
        let close = s.rfind(')').ok_or_else(|| IsaError::Parse {
            line,
            msg: format!("missing ')' in `{s}`"),
        })?;
        let off_s = &s[..open];
        let base_s = &s[open + 1..close];
        let off = if off_s.is_empty() {
            0
        } else {
            parse_imm(off_s).ok_or_else(|| IsaError::Parse {
                line,
                msg: format!("bad offset `{off_s}`"),
            })?
        };
        let off = i32::try_from(off).map_err(|_| IsaError::Parse {
            line,
            msg: format!("offset {off} out of range"),
        })?;
        let base = parse_int_reg(base_s).ok_or_else(|| IsaError::Parse {
            line,
            msg: format!("bad base register `{base_s}`"),
        })?;
        return Ok(Tok::Mem { off, base });
    }
    if let Some(r) = parse_int_reg(s) {
        return Ok(Tok::Int(r));
    }
    if let Some(r) = parse_fp_reg(s) {
        return Ok(Tok::Fp(r));
    }
    if let Some(q) = parse_queue(s) {
        return Ok(Tok::Q(q));
    }
    if let Some(v) = parse_imm(s) {
        return Ok(Tok::Imm(v));
    }
    if s.chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '@' || c == '.')
        && !s.is_empty()
    {
        return Ok(Tok::Label(s.to_string()));
    }
    Err(IsaError::Parse {
        line,
        msg: format!("unrecognised operand `{s}`"),
    })
}

struct PendingTarget {
    pc: u32,
    label: String,
}

fn expect_n(ops: &[Tok], n: usize, line: usize, mnem: &str) -> Result<()> {
    if ops.len() != n {
        return Err(IsaError::Parse {
            line,
            msg: format!("`{mnem}` expects {n} operand(s), got {}", ops.len()),
        });
    }
    Ok(())
}

macro_rules! op_match {
    ($line:expr, $mnem:expr, $val:expr, $pat:pat => $out:expr, $want:expr) => {
        match $val.clone() {
            $pat => $out,
            other => {
                return Err(IsaError::Parse {
                    line: $line,
                    msg: format!("`{}`: expected {}, got {:?}", $mnem, $want, other),
                })
            }
        }
    };
}

/// Parses load/store mnemonics of the forms `l{b,h,w,d}[u][.q]`,
/// `s{b,h,w,d}[.q]`. Returns (is_load, width, signed, queue_form).
fn parse_mem_mnemonic(m: &str) -> Option<(bool, Width, bool, bool)> {
    let (m, queue_form) = match m.strip_suffix(".q") {
        Some(m) => (m, true),
        None => (m, false),
    };
    let mut chars = m.chars();
    let lead = chars.next()?;
    let is_load = match lead {
        'l' => true,
        's' => false,
        _ => return None,
    };
    let w = Width::from_suffix(chars.next()?)?;
    let rest: String = chars.collect();
    let signed = match rest.as_str() {
        "" => true,
        "u" if is_load => false,
        _ => return None,
    };
    Some((is_load, w, signed, queue_form))
}

/// Assembles DISA source text into a [`Program`].
pub fn assemble(name: impl Into<String>, src: &str) -> Result<Program> {
    let mut p = Program::new(name);
    let mut pending: Vec<PendingTarget> = Vec::new();

    for (lineno0, raw) in src.lines().enumerate() {
        let line = lineno0 + 1;
        let mut text = raw;
        if let Some(c) = text.find([';', '#']) {
            text = &text[..c];
        }
        let mut text = text.trim();
        // labels (possibly several on one line)
        while let Some(colon) = text.find(':') {
            let (l, rest) = text.split_at(colon);
            let l = l.trim();
            if l.is_empty()
                || !l
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                return Err(IsaError::Parse {
                    line,
                    msg: format!("bad label `{l}`"),
                });
            }
            p.add_label(l, p.len())?;
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnem, rest) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        let ops: Vec<Tok> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',')
                .map(|s| parse_operand(s, line))
                .collect::<Result<_>>()?
        };

        // Target helper: records a pending label fixup and returns a
        // placeholder index.
        let target = |ops: &Tok, pc: u32, pending: &mut Vec<PendingTarget>| -> Result<u32> {
            match ops {
                Tok::Label(l) => {
                    if let Some(idx) = l.strip_prefix('@') {
                        idx.parse::<u32>().map_err(|_| IsaError::Parse {
                            line,
                            msg: format!("bad absolute target `{l}`"),
                        })
                    } else {
                        pending.push(PendingTarget {
                            pc,
                            label: l.clone(),
                        });
                        Ok(u32::MAX)
                    }
                }
                Tok::Imm(v) => Ok(*v as u32),
                other => Err(IsaError::Parse {
                    line,
                    msg: format!("bad branch target {other:?}"),
                }),
            }
        };

        let pc = p.len();
        let instr = if let Some(op) = IntOp::from_mnemonic(mnem) {
            expect_n(&ops, 3, line, mnem)?;
            let dst = op_match!(line, mnem, ops[0], Tok::Int(r) => r, "int register");
            let a = op_match!(line, mnem, ops[1], Tok::Int(r) => r, "int register");
            let b = match ops[2] {
                Tok::Int(r) => Src::Reg(r),
                Tok::Imm(v) => Src::Imm(v),
                ref other => {
                    return Err(IsaError::Parse {
                        line,
                        msg: format!("`{mnem}`: bad second source {other:?}"),
                    })
                }
            };
            Instr::IntOp { op, dst, a, b }
        } else if let Some(op) = FpBinOp::from_mnemonic(mnem) {
            expect_n(&ops, 3, line, mnem)?;
            let dst = op_match!(line, mnem, ops[0], Tok::Fp(r) => r, "fp register");
            let a = op_match!(line, mnem, ops[1], Tok::Fp(r) => r, "fp register");
            let b = op_match!(line, mnem, ops[2], Tok::Fp(r) => r, "fp register");
            Instr::FpBin { op, dst, a, b }
        } else if let Some(op) = FpUnOp::from_mnemonic(mnem) {
            expect_n(&ops, 2, line, mnem)?;
            let dst = op_match!(line, mnem, ops[0], Tok::Fp(r) => r, "fp register");
            let a = op_match!(line, mnem, ops[1], Tok::Fp(r) => r, "fp register");
            Instr::FpUn { op, dst, a }
        } else if let Some(op) = FpCmpOp::from_mnemonic(mnem) {
            expect_n(&ops, 3, line, mnem)?;
            let dst = op_match!(line, mnem, ops[0], Tok::Int(r) => r, "int register");
            let a = op_match!(line, mnem, ops[1], Tok::Fp(r) => r, "fp register");
            let b = op_match!(line, mnem, ops[2], Tok::Fp(r) => r, "fp register");
            Instr::FpCmp { op, dst, a, b }
        } else if let Some(cond) = BranchCond::from_mnemonic(mnem) {
            expect_n(&ops, 3, line, mnem)?;
            let a = op_match!(line, mnem, ops[0], Tok::Int(r) => r, "int register");
            let b = op_match!(line, mnem, ops[1], Tok::Int(r) => r, "int register");
            let t = target(&ops[2], pc, &mut pending)?;
            Instr::Branch {
                cond,
                a,
                b,
                target: t,
            }
        } else {
            match mnem {
                "li" => {
                    expect_n(&ops, 2, line, mnem)?;
                    let dst = op_match!(line, mnem, ops[0], Tok::Int(r) => r, "int register");
                    let imm = op_match!(line, mnem, ops[1], Tok::Imm(v) => v, "immediate");
                    Instr::Li { dst, imm }
                }
                "cvt.d.l" => {
                    expect_n(&ops, 2, line, mnem)?;
                    let dst = op_match!(line, mnem, ops[0], Tok::Fp(r) => r, "fp register");
                    let src = op_match!(line, mnem, ops[1], Tok::Int(r) => r, "int register");
                    Instr::CvtIf { dst, src }
                }
                "cvt.l.d" => {
                    expect_n(&ops, 2, line, mnem)?;
                    let dst = op_match!(line, mnem, ops[0], Tok::Int(r) => r, "int register");
                    let src = op_match!(line, mnem, ops[1], Tok::Fp(r) => r, "fp register");
                    Instr::CvtFi { dst, src }
                }
                "l.d" => {
                    expect_n(&ops, 2, line, mnem)?;
                    match (&ops[0], &ops[1]) {
                        (Tok::Fp(dst), Tok::Mem { off, base }) => Instr::LoadF {
                            dst: *dst,
                            base: *base,
                            off: *off,
                        },
                        (Tok::Q(q), Tok::Mem { off, base }) => Instr::LoadQ {
                            q: *q,
                            base: *base,
                            off: *off,
                            width: Width::D,
                            signed: true,
                        },
                        _ => {
                            return Err(IsaError::Parse {
                                line,
                                msg: "`l.d` expects fp-reg/queue, mem".into(),
                            })
                        }
                    }
                }
                "s.d" => {
                    expect_n(&ops, 2, line, mnem)?;
                    match (&ops[0], &ops[1]) {
                        (Tok::Fp(src), Tok::Mem { off, base }) => Instr::StoreF {
                            src: *src,
                            base: *base,
                            off: *off,
                        },
                        (Tok::Q(q), Tok::Mem { off, base }) => Instr::StoreQ {
                            q: *q,
                            base: *base,
                            off: *off,
                            width: Width::D,
                        },
                        _ => {
                            return Err(IsaError::Parse {
                                line,
                                msg: "`s.d` expects fp-reg/queue, mem".into(),
                            })
                        }
                    }
                }
                "pref" => {
                    expect_n(&ops, 1, line, mnem)?;
                    let (off, base) = op_match!(line, mnem, ops[0], Tok::Mem { off, base } => (off, base), "mem operand");
                    Instr::Prefetch { base, off }
                }
                "send" => {
                    expect_n(&ops, 2, line, mnem)?;
                    let q = op_match!(line, mnem, ops[0], Tok::Q(q) => q, "queue");
                    let src = op_match!(line, mnem, ops[1], Tok::Int(r) => r, "int register");
                    Instr::SendI { q, src }
                }
                "send.d" => {
                    expect_n(&ops, 2, line, mnem)?;
                    let q = op_match!(line, mnem, ops[0], Tok::Q(q) => q, "queue");
                    let src = op_match!(line, mnem, ops[1], Tok::Fp(r) => r, "fp register");
                    Instr::SendF { q, src }
                }
                "recv" => {
                    expect_n(&ops, 2, line, mnem)?;
                    let dst = op_match!(line, mnem, ops[0], Tok::Int(r) => r, "int register");
                    let q = op_match!(line, mnem, ops[1], Tok::Q(q) => q, "queue");
                    Instr::RecvI { q, dst }
                }
                "recv.d" => {
                    expect_n(&ops, 2, line, mnem)?;
                    let dst = op_match!(line, mnem, ops[0], Tok::Fp(r) => r, "fp register");
                    let q = op_match!(line, mnem, ops[1], Tok::Q(q) => q, "queue");
                    Instr::RecvF { q, dst }
                }
                "putscq" => {
                    expect_n(&ops, 0, line, mnem)?;
                    Instr::PutScq
                }
                "getscq" => {
                    expect_n(&ops, 0, line, mnem)?;
                    Instr::GetScq
                }
                "j" => {
                    expect_n(&ops, 1, line, mnem)?;
                    let t = target(&ops[0], pc, &mut pending)?;
                    Instr::Jump { target: t }
                }
                "cbr" => {
                    expect_n(&ops, 1, line, mnem)?;
                    let t = target(&ops[0], pc, &mut pending)?;
                    Instr::CBranch { target: t }
                }
                "halt" => {
                    expect_n(&ops, 0, line, mnem)?;
                    Instr::Halt
                }
                "nop" => {
                    expect_n(&ops, 0, line, mnem)?;
                    Instr::Nop
                }
                _ => {
                    if let Some((is_load, width, signed, queue_form)) = parse_mem_mnemonic(mnem) {
                        expect_n(&ops, 2, line, mnem)?;
                        match (is_load, queue_form, &ops[0], &ops[1]) {
                            (true, false, Tok::Int(dst), Tok::Mem { off, base }) => Instr::Load {
                                dst: *dst,
                                base: *base,
                                off: *off,
                                width,
                                signed,
                            },
                            (true, true, Tok::Q(q), Tok::Mem { off, base }) => Instr::LoadQ {
                                q: *q,
                                base: *base,
                                off: *off,
                                width,
                                signed,
                            },
                            (false, false, Tok::Int(src), Tok::Mem { off, base }) => Instr::Store {
                                src: *src,
                                base: *base,
                                off: *off,
                                width,
                            },
                            (false, true, Tok::Q(q), Tok::Mem { off, base }) => Instr::StoreQ {
                                q: *q,
                                base: *base,
                                off: *off,
                                width,
                            },
                            _ => {
                                return Err(IsaError::Parse {
                                    line,
                                    msg: format!("`{mnem}`: bad operand combination"),
                                })
                            }
                        }
                    } else {
                        return Err(IsaError::Parse {
                            line,
                            msg: format!("unknown mnemonic `{mnem}`"),
                        });
                    }
                }
            }
        };
        p.push(instr);
    }

    // Resolve pending label targets.
    for t in pending {
        let at = p.label(&t.label).ok_or(IsaError::UndefinedLabel(t.label))?;
        p.instr_mut(t.pc).set_target(at);
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_basic_loop() {
        let p = assemble(
            "t",
            r"
            li r1, 0
            li r2, 4
        loop:
            add r1, r1, r2
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ",
        )
        .unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.label("loop"), Some(2));
        assert_eq!(p.instr(4).target(), Some(2));
        p.validate().unwrap();
    }

    #[test]
    fn forward_references_resolve() {
        let p = assemble("t", "j end\nnop\nend:\nhalt").unwrap();
        assert_eq!(p.instr(0).target(), Some(2));
    }

    #[test]
    fn undefined_label_is_error() {
        assert!(matches!(
            assemble("t", "j nowhere\nhalt"),
            Err(IsaError::UndefinedLabel(_))
        ));
    }

    #[test]
    fn memory_forms() {
        let p = assemble(
            "t",
            r"
            ld   r1, 8(r2)
            lbu  r3, 0(r2)
            lw   r4, -4(r2)
            sd   r1, 16(r2)
            sb   r3, (r2)
            l.d  f1, 8(r2)
            s.d  f1, 8(r2)
            l.d  LDQ, 24(r2)
            s.d  SDQ, 32(r2)
            ld.q LDQ, 0(r2)
            pref 64(r2)
            halt
        ",
        )
        .unwrap();
        assert!(matches!(
            p.instr(0),
            Instr::Load {
                width: Width::D,
                signed: true,
                ..
            }
        ));
        assert!(matches!(
            p.instr(1),
            Instr::Load {
                width: Width::B,
                signed: false,
                ..
            }
        ));
        assert!(matches!(p.instr(2), Instr::Load { off: -4, .. }));
        assert!(matches!(
            p.instr(4),
            Instr::Store {
                off: 0,
                width: Width::B,
                ..
            }
        ));
        assert!(matches!(
            p.instr(7),
            Instr::LoadQ {
                q: Queue::Ldq,
                width: Width::D,
                ..
            }
        ));
        assert!(matches!(p.instr(8), Instr::StoreQ { q: Queue::Sdq, .. }));
        assert!(matches!(p.instr(9), Instr::LoadQ { q: Queue::Ldq, .. }));
        assert!(matches!(p.instr(10), Instr::Prefetch { off: 64, .. }));
    }

    #[test]
    fn queue_comm_forms() {
        let p = assemble(
            "t",
            r"
            send   SDQ, r3
            send.d CDQ, f3
            recv   r4, LDQ
            recv.d f4, LDQ
            putscq
            getscq
            cbr @0
            halt
        ",
        )
        .unwrap();
        assert!(matches!(p.instr(0), Instr::SendI { q: Queue::Sdq, .. }));
        assert!(matches!(p.instr(3), Instr::RecvF { q: Queue::Ldq, .. }));
        assert!(matches!(p.instr(6), Instr::CBranch { target: 0 }));
    }

    #[test]
    fn immediates_hex_and_negative() {
        let p = assemble("t", "li r1, 0x10\nli r2, -5\nadd r3, r1, -1\nhalt").unwrap();
        assert!(matches!(p.instr(0), Instr::Li { imm: 16, .. }));
        assert!(matches!(p.instr(1), Instr::Li { imm: -5, .. }));
        assert!(matches!(
            p.instr(2),
            Instr::IntOp {
                b: Src::Imm(-1),
                ..
            }
        ));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("t", "nop\nbogus r1\nhalt").unwrap_err();
        match err {
            IsaError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn display_round_trips() {
        let src = r"
            li r1, 0
            li r2, 100
        loop:
            ld r3, 0(r1)
            add.d f1, f2, f3
            c.lt.d r4, f1, f2
            send SDQ, r3
            recv.d f9, LDQ
            s.d SDQ, 8(r1)
            bne r2, r0, loop
            halt
        ";
        let p1 = assemble("t", src).unwrap();
        let text = p1.to_string();
        let p2 = assemble("t", &text).unwrap();
        assert_eq!(p1.instrs(), p2.instrs());
    }

    #[test]
    fn fp_ops_parse() {
        let p = assemble(
            "t",
            "add.d f1, f2, f3\nsqrt.d f4, f5\nc.eq.d r1, f1, f2\ncvt.d.l f1, r2\ncvt.l.d r2, f1\nhalt",
        )
        .unwrap();
        assert!(matches!(
            p.instr(0),
            Instr::FpBin {
                op: FpBinOp::Add,
                ..
            }
        ));
        assert!(matches!(
            p.instr(1),
            Instr::FpUn {
                op: FpUnOp::Sqrt,
                ..
            }
        ));
        assert!(matches!(
            p.instr(2),
            Instr::FpCmp {
                op: FpCmpOp::Eq,
                ..
            }
        ));
        assert!(matches!(p.instr(3), Instr::CvtIf { .. }));
        assert!(matches!(p.instr(4), Instr::CvtFi { .. }));
    }
}
