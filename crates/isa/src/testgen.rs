//! Random structured-program generation for property tests.
//!
//! Generates terminating DISA programs with loops, branches, integer and
//! floating-point arithmetic, and loads/stores confined to a bounded
//! arena, from a single `u64` seed (a small internal xorshift keeps this
//! crate free of test-only dependencies). The whole simulation stack
//! property-tests itself against these: the out-of-order core against the
//! reference interpreter, and the stream separator + decoupled machines
//! against the sequential semantics.

use crate::builder::ProgramBuilder;
use crate::instr::BranchCond;
use crate::mem::Memory;
use crate::op::{FpBinOp, FpUnOp, IntOp};
use crate::program::Program;
use crate::reg::{FpReg, IntReg};

/// Deterministic xorshift64* generator.
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// Creates a generator (seed 0 is remapped).
    pub fn new(seed: u64) -> XorShift {
        XorShift(seed.wrapping_mul(2685821657736338717).max(1))
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform choice from a slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Bernoulli with probability `pct`%.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

/// Shape parameters for generated programs.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Maximum loop nesting depth.
    pub max_depth: u32,
    /// Maximum straight-line statements per block.
    pub max_block: u32,
    /// Maximum iterations per generated loop.
    pub max_trip: i64,
    /// Include floating-point computation.
    pub with_fp: bool,
    /// Include loads/stores.
    pub with_mem: bool,
    /// Arena size in 8-byte words (memory accesses stay inside).
    pub arena_words: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 2,
            max_block: 6,
            max_trip: 6,
            with_fp: true,
            with_mem: true,
            arena_words: 64,
        }
    }
}

/// Base address of the generated programs' data arena.
pub const ARENA_BASE: u64 = 0x0004_0000;

/// Register conventions of generated programs: `r8` holds the arena base,
/// `r1..r6` are scratch, `r20..r24` are loop counters by depth.
const SCRATCH: [u8; 6] = [1, 2, 3, 4, 5, 6];
const FP_SCRATCH: [u8; 4] = [1, 2, 3, 4];

struct Gen<'a> {
    rng: XorShift,
    cfg: GenConfig,
    b: &'a mut ProgramBuilder,
    label_n: u32,
}

impl Gen<'_> {
    fn fresh_label(&mut self, tag: &str) -> String {
        self.label_n += 1;
        format!("{tag}_{}", self.label_n)
    }

    fn scratch(&mut self) -> IntReg {
        IntReg::new(*self.rng.pick(&SCRATCH))
    }

    fn fp_scratch(&mut self) -> FpReg {
        FpReg::new(*self.rng.pick(&FP_SCRATCH))
    }

    /// Emits one random statement.
    fn stmt(&mut self) {
        let choice = self.rng.below(10);
        match choice {
            0..=3 => {
                // integer op
                let ops = [
                    IntOp::Add,
                    IntOp::Sub,
                    IntOp::Mul,
                    IntOp::And,
                    IntOp::Or,
                    IntOp::Xor,
                    IntOp::Slt,
                ];
                let op = *self.rng.pick(&ops);
                let (d, a, b2) = (self.scratch(), self.scratch(), self.scratch());
                if self.rng.chance(40) {
                    let imm = self.rng.below(64) as i64 - 32;
                    self.b.int_opi(op, d, a, imm);
                } else {
                    self.b.int_op(op, d, a, b2);
                }
            }
            4 => {
                let d = self.scratch();
                let imm = self.rng.below(1024) as i64 - 512;
                self.b.li(d, imm);
            }
            5 | 6 if self.cfg.with_mem => {
                // load or store at a masked arena offset: mask the scratch
                // register into range, then access.
                let addr_r = IntReg::new(9);
                let v = self.scratch();
                let mask = (self.cfg.arena_words - 1) as i64;
                self.b.andi(addr_r, v, mask);
                self.b.slli(addr_r, addr_r, 3);
                self.b.add(addr_r, addr_r, IntReg::new(8));
                if self.rng.chance(50) {
                    let d = self.scratch();
                    self.b.ld(d, addr_r, 0);
                } else {
                    let s = self.scratch();
                    self.b.sd(s, addr_r, 0);
                }
            }
            7 if self.cfg.with_fp => {
                // fp compute chained from an integer value
                let f = self.fp_scratch();
                let g = self.fp_scratch();
                let s = self.scratch();
                self.b.cvt_if(f, s);
                let ops = [
                    FpBinOp::Add,
                    FpBinOp::Sub,
                    FpBinOp::Mul,
                    FpBinOp::Min,
                    FpBinOp::Max,
                ];
                let op = *self.rng.pick(&ops);
                self.b.fp_bin(op, g, g, f);
                if self.rng.chance(30) {
                    self.b.fp_un(FpUnOp::Abs, g, g);
                }
                if self.rng.chance(40) {
                    let d = self.scratch();
                    self.b.cvt_fi(d, g);
                    // keep converted values small so they can't corrupt
                    // address computation into unaligned territory
                    self.b.andi(d, d, 0xff);
                }
            }
            _ => {
                // if/else diamond on a data-dependent condition
                let a = self.scratch();
                let else_l = self.fresh_label("else");
                let join_l = self.fresh_label("join");
                self.b
                    .branch(BranchCond::Lt, a, IntReg::ZERO, else_l.clone());
                let d = self.scratch();
                self.b.addi(d, d, 1);
                self.b.jump(join_l.clone());
                self.b.label(else_l);
                let d = self.scratch();
                self.b.subi(d, d, 1);
                self.b.label(join_l);
            }
        }
    }

    /// Emits a block of statements, possibly containing a nested counted
    /// loop.
    fn block(&mut self, depth: u32) {
        let n = 1 + self.rng.below(self.cfg.max_block as u64);
        for _ in 0..n {
            if depth < self.cfg.max_depth && self.rng.chance(25) {
                self.counted_loop(depth + 1);
            } else {
                self.stmt();
            }
        }
    }

    /// Emits a loop with a guaranteed-terminating counter.
    fn counted_loop(&mut self, depth: u32) {
        let counter = IntReg::new(20 + depth as u8);
        let trip = 1 + self.rng.below(self.cfg.max_trip as u64) as i64;
        let head = self.fresh_label("loop");
        self.b.li(counter, trip);
        self.b.label(head.clone());
        self.block(depth);
        self.b.subi(counter, counter, 1);
        self.b.bne(counter, IntReg::ZERO, head);
    }
}

/// Generates a random structured program plus an initial memory image for
/// its arena. The program always terminates and never accesses memory
/// outside `[ARENA_BASE, ARENA_BASE + 8 * arena_words)`.
pub fn random_program(seed: u64, cfg: GenConfig) -> (Program, Memory, Vec<(IntReg, i64)>) {
    let mut b = ProgramBuilder::new(format!("gen{seed}"));
    let mut g = Gen {
        rng: XorShift::new(seed),
        cfg,
        b: &mut b,
        label_n: 0,
    };

    // Seed scratch registers with data-dependent values.
    for (i, &r) in SCRATCH.iter().enumerate() {
        let v = g.rng.below(1000) as i64 - 500;
        g.b.li(IntReg::new(r), v + i as i64);
    }
    g.counted_loop(0);
    // Make results observable: store every scratch register to the arena.
    for (i, &r) in SCRATCH.iter().enumerate() {
        g.b.sd(IntReg::new(r), IntReg::new(8), (8 * i) as i32);
    }
    g.b.halt();
    let prog = b.finish().expect("generated program is well-formed");

    let mut mem = Memory::new();
    let mut rng = XorShift::new(seed ^ 0xdead_beef);
    for w in 0..cfg.arena_words {
        mem.write_i64(ARENA_BASE + 8 * w, rng.below(1 << 20) as i64 - (1 << 19))
            .unwrap();
    }
    let regs = vec![(IntReg::new(8), ARENA_BASE as i64)];
    (prog, mem, regs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;

    #[test]
    fn generated_programs_validate_and_terminate() {
        for seed in 0..50 {
            let (p, mem, regs) = random_program(seed, GenConfig::default());
            p.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let mut i = Interp::new(&p, mem);
            for &(r, v) in &regs {
                i.set_reg(r, v);
            }
            let st = i
                .run(2_000_000)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(st.instrs > 5, "seed {seed} trivially short");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, ma, _) = random_program(7, GenConfig::default());
        let (b, mb, _) = random_program(7, GenConfig::default());
        assert_eq!(a.instrs(), b.instrs());
        assert_eq!(ma.checksum(), mb.checksum());
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _, _) = random_program(1, GenConfig::default());
        let (b, _, _) = random_program(2, GenConfig::default());
        assert_ne!(a.instrs(), b.instrs());
    }

    #[test]
    fn memory_stays_in_arena() {
        use crate::interp::MemKind;
        for seed in 0..30 {
            let (p, mem, regs) = random_program(seed, GenConfig::default());
            let mut i = Interp::new(&p, mem);
            for &(r, v) in &regs {
                i.set_reg(r, v);
            }
            let hi = ARENA_BASE + 8 * GenConfig::default().arena_words;
            i.run_with_hook(2_000_000, &mut |e| {
                if e.kind != MemKind::Prefetch {
                    assert!(
                        e.addr >= ARENA_BASE && e.addr < hi,
                        "seed {seed}: access at {:#x} outside arena",
                        e.addr
                    );
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn int_only_config_has_no_fp() {
        let cfg = GenConfig {
            with_fp: false,
            ..GenConfig::default()
        };
        for seed in 0..20 {
            let (p, _, _) = random_program(seed, cfg);
            assert!(!p.instrs().iter().any(|i| i.is_fp()), "seed {seed}");
        }
    }
}
