//! Fluent Rust API for constructing DISA programs.
//!
//! The workload crate generates its kernels through this builder rather
//! than through assembler text when parameterisation (sizes, strides,
//! unrolling) is easier in Rust. Forward label references are supported and
//! resolved by [`ProgramBuilder::finish`].
//!
//! ```
//! use hidisc_isa::builder::ProgramBuilder;
//! use hidisc_isa::{IntReg, BranchCond};
//!
//! let r1 = IntReg::new(1);
//! let r2 = IntReg::new(2);
//! let mut b = ProgramBuilder::new("count");
//! b.li(r1, 0).li(r2, 10).label("loop");
//! b.addi(r1, r1, 1).subi(r2, r2, 1);
//! b.branch(BranchCond::Ne, r2, IntReg::ZERO, "loop");
//! b.halt();
//! let p = b.finish().unwrap();
//! assert_eq!(p.len(), 6);
//! ```

use crate::instr::{BranchCond, Instr, Src, Width};
use crate::op::{FpBinOp, FpCmpOp, FpUnOp, IntOp};
use crate::program::Program;
use crate::reg::{FpReg, IntReg, Queue};
use crate::{IsaError, Result};

/// Builder for [`Program`] with symbolic labels.
#[derive(Debug)]
pub struct ProgramBuilder {
    prog: Program,
    fixups: Vec<(u32, String)>,
    errors: Vec<IsaError>,
}

impl ProgramBuilder {
    /// Creates a builder for a program with the given name.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            prog: Program::new(name),
            fixups: Vec::new(),
            errors: Vec::new(),
        }
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        if let Err(e) = self.prog.add_label(name, self.prog.len()) {
            self.errors.push(e);
        }
        self
    }

    /// Emits a raw instruction.
    pub fn raw(&mut self, i: Instr) -> &mut Self {
        self.prog.push(i);
        self
    }

    /// Emits a control instruction targeting `label` (resolved at finish).
    fn control(&mut self, i: Instr, label: impl Into<String>) -> &mut Self {
        let pc = self.prog.push(i);
        self.fixups.push((pc, label.into()));
        self
    }

    // ---- integer ----

    /// `li dst, imm`.
    pub fn li(&mut self, dst: IntReg, imm: i64) -> &mut Self {
        self.raw(Instr::Li { dst, imm })
    }

    /// Three-register ALU op.
    pub fn int_op(&mut self, op: IntOp, dst: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.raw(Instr::IntOp {
            op,
            dst,
            a,
            b: Src::Reg(b),
        })
    }

    /// Register-immediate ALU op.
    pub fn int_opi(&mut self, op: IntOp, dst: IntReg, a: IntReg, imm: i64) -> &mut Self {
        self.raw(Instr::IntOp {
            op,
            dst,
            a,
            b: Src::Imm(imm),
        })
    }

    /// `add dst, a, b`.
    pub fn add(&mut self, dst: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.int_op(IntOp::Add, dst, a, b)
    }

    /// `add dst, a, imm`.
    pub fn addi(&mut self, dst: IntReg, a: IntReg, imm: i64) -> &mut Self {
        self.int_opi(IntOp::Add, dst, a, imm)
    }

    /// `sub dst, a, b`.
    pub fn sub(&mut self, dst: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.int_op(IntOp::Sub, dst, a, b)
    }

    /// `sub dst, a, imm`.
    pub fn subi(&mut self, dst: IntReg, a: IntReg, imm: i64) -> &mut Self {
        self.int_opi(IntOp::Sub, dst, a, imm)
    }

    /// `mul dst, a, b`.
    pub fn mul(&mut self, dst: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.int_op(IntOp::Mul, dst, a, b)
    }

    /// `mul dst, a, imm`.
    pub fn muli(&mut self, dst: IntReg, a: IntReg, imm: i64) -> &mut Self {
        self.int_opi(IntOp::Mul, dst, a, imm)
    }

    /// `and dst, a, imm`.
    pub fn andi(&mut self, dst: IntReg, a: IntReg, imm: i64) -> &mut Self {
        self.int_opi(IntOp::And, dst, a, imm)
    }

    /// `sll dst, a, imm` (shift-left by constant; the idiom for scaling an
    /// index to a byte offset).
    pub fn slli(&mut self, dst: IntReg, a: IntReg, imm: i64) -> &mut Self {
        self.int_opi(IntOp::Sll, dst, a, imm)
    }

    /// `srl dst, a, imm`.
    pub fn srli(&mut self, dst: IntReg, a: IntReg, imm: i64) -> &mut Self {
        self.int_opi(IntOp::Srl, dst, a, imm)
    }

    /// `xor dst, a, b`.
    pub fn xor(&mut self, dst: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.int_op(IntOp::Xor, dst, a, b)
    }

    /// Register move (`add dst, src, r0`).
    pub fn mov(&mut self, dst: IntReg, src: IntReg) -> &mut Self {
        self.int_op(IntOp::Add, dst, src, IntReg::ZERO)
    }

    /// `rem dst, a, imm`.
    pub fn remi(&mut self, dst: IntReg, a: IntReg, imm: i64) -> &mut Self {
        self.int_opi(IntOp::Rem, dst, a, imm)
    }

    // ---- floating point ----

    /// `op.d dst, a, b`.
    pub fn fp_bin(&mut self, op: FpBinOp, dst: FpReg, a: FpReg, b: FpReg) -> &mut Self {
        self.raw(Instr::FpBin { op, dst, a, b })
    }

    /// `op.d dst, a`.
    pub fn fp_un(&mut self, op: FpUnOp, dst: FpReg, a: FpReg) -> &mut Self {
        self.raw(Instr::FpUn { op, dst, a })
    }

    /// `c.xx.d dst, a, b`.
    pub fn fp_cmp(&mut self, op: FpCmpOp, dst: IntReg, a: FpReg, b: FpReg) -> &mut Self {
        self.raw(Instr::FpCmp { op, dst, a, b })
    }

    /// `cvt.d.l dst, src`.
    pub fn cvt_if(&mut self, dst: FpReg, src: IntReg) -> &mut Self {
        self.raw(Instr::CvtIf { dst, src })
    }

    /// `cvt.l.d dst, src`.
    pub fn cvt_fi(&mut self, dst: IntReg, src: FpReg) -> &mut Self {
        self.raw(Instr::CvtFi { dst, src })
    }

    // ---- memory ----

    /// `ld dst, off(base)` — 8-byte load.
    pub fn ld(&mut self, dst: IntReg, base: IntReg, off: i32) -> &mut Self {
        self.raw(Instr::Load {
            dst,
            base,
            off,
            width: Width::D,
            signed: true,
        })
    }

    /// `lbu dst, off(base)` — unsigned byte load.
    pub fn lbu(&mut self, dst: IntReg, base: IntReg, off: i32) -> &mut Self {
        self.raw(Instr::Load {
            dst,
            base,
            off,
            width: Width::B,
            signed: false,
        })
    }

    /// `lw dst, off(base)` — signed 4-byte load.
    pub fn lw(&mut self, dst: IntReg, base: IntReg, off: i32) -> &mut Self {
        self.raw(Instr::Load {
            dst,
            base,
            off,
            width: Width::W,
            signed: true,
        })
    }

    /// `l.d dst, off(base)` — fp load.
    pub fn lfd(&mut self, dst: FpReg, base: IntReg, off: i32) -> &mut Self {
        self.raw(Instr::LoadF { dst, base, off })
    }

    /// `sd src, off(base)` — 8-byte store.
    pub fn sd(&mut self, src: IntReg, base: IntReg, off: i32) -> &mut Self {
        self.raw(Instr::Store {
            src,
            base,
            off,
            width: Width::D,
        })
    }

    /// `sb src, off(base)` — byte store.
    pub fn sb(&mut self, src: IntReg, base: IntReg, off: i32) -> &mut Self {
        self.raw(Instr::Store {
            src,
            base,
            off,
            width: Width::B,
        })
    }

    /// `sw src, off(base)` — 4-byte store.
    pub fn sw(&mut self, src: IntReg, base: IntReg, off: i32) -> &mut Self {
        self.raw(Instr::Store {
            src,
            base,
            off,
            width: Width::W,
        })
    }

    /// `s.d src, off(base)` — fp store.
    pub fn sfd(&mut self, src: FpReg, base: IntReg, off: i32) -> &mut Self {
        self.raw(Instr::StoreF { src, base, off })
    }

    /// `pref off(base)`.
    pub fn pref(&mut self, base: IntReg, off: i32) -> &mut Self {
        self.raw(Instr::Prefetch { base, off })
    }

    // ---- queues ----

    /// `send Q, src`.
    pub fn send(&mut self, q: Queue, src: IntReg) -> &mut Self {
        self.raw(Instr::SendI { q, src })
    }

    /// `recv dst, Q`.
    pub fn recv(&mut self, q: Queue, dst: IntReg) -> &mut Self {
        self.raw(Instr::RecvI { q, dst })
    }

    // ---- control ----

    /// Conditional branch to `label`.
    pub fn branch(
        &mut self,
        cond: BranchCond,
        a: IntReg,
        b: IntReg,
        label: impl Into<String>,
    ) -> &mut Self {
        self.control(
            Instr::Branch {
                cond,
                a,
                b,
                target: u32::MAX,
            },
            label,
        )
    }

    /// `bne a, b, label`.
    pub fn bne(&mut self, a: IntReg, b: IntReg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchCond::Ne, a, b, label)
    }

    /// `beq a, b, label`.
    pub fn beq(&mut self, a: IntReg, b: IntReg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchCond::Eq, a, b, label)
    }

    /// `blt a, b, label`.
    pub fn blt(&mut self, a: IntReg, b: IntReg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchCond::Lt, a, b, label)
    }

    /// `bge a, b, label`.
    pub fn bge(&mut self, a: IntReg, b: IntReg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchCond::Ge, a, b, label)
    }

    /// `j label`.
    pub fn jump(&mut self, label: impl Into<String>) -> &mut Self {
        self.control(Instr::Jump { target: u32::MAX }, label)
    }

    /// `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.raw(Instr::Halt)
    }

    /// `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.raw(Instr::Nop)
    }

    /// Current position (index of the next instruction to be emitted).
    pub fn here(&self) -> u32 {
        self.prog.len()
    }

    /// Resolves labels and returns the program. Fails on undefined or
    /// duplicate labels, or if the program fails [`Program::validate`].
    pub fn finish(mut self) -> Result<Program> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        for (pc, label) in self.fixups {
            let at = self
                .prog
                .label(&label)
                .ok_or(IsaError::UndefinedLabel(label))?;
            self.prog.instr_mut(pc).set_target(at);
        }
        self.prog.validate()?;
        Ok(self.prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_loop_with_forward_and_backward_labels() {
        let r1 = IntReg::new(1);
        let mut b = ProgramBuilder::new("t");
        b.li(r1, 3);
        b.label("top");
        b.subi(r1, r1, 1);
        b.beq(r1, IntReg::ZERO, "done");
        b.jump("top");
        b.label("done");
        b.halt();
        let p = b.finish().unwrap();
        assert_eq!(p.instr(2).target(), Some(4)); // beq -> done (halt at 4)
        assert_eq!(p.instr(3).target(), Some(1)); // j -> top
    }

    #[test]
    fn undefined_label_fails_at_finish() {
        let mut b = ProgramBuilder::new("t");
        b.jump("missing");
        b.halt();
        assert!(matches!(b.finish(), Err(IsaError::UndefinedLabel(_))));
    }

    #[test]
    fn duplicate_label_fails_at_finish() {
        let mut b = ProgramBuilder::new("t");
        b.label("x").nop().label("x").halt();
        assert!(matches!(b.finish(), Err(IsaError::DuplicateLabel(_))));
    }

    #[test]
    fn validation_runs_at_finish() {
        let mut b = ProgramBuilder::new("t");
        b.nop(); // falls off the end
        assert!(b.finish().is_err());
    }

    #[test]
    fn mov_is_add_zero() {
        let mut b = ProgramBuilder::new("t");
        b.mov(IntReg::new(2), IntReg::new(3)).halt();
        let p = b.finish().unwrap();
        assert!(matches!(
            p.instr(0),
            Instr::IntOp { op: IntOp::Add, b: Src::Reg(z), .. } if z.is_zero()
        ));
    }
}
