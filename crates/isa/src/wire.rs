//! Minimal binary wire format for machine checkpoints.
//!
//! Every crate in the suite serialises its dynamic state through [`Enc`] /
//! [`Dec`]: fixed-width little-endian scalars, length-prefixed byte runs,
//! no self-description. The format is deliberately dumb — the checkpoint
//! header (magic, version, config hash) is what guards against decoding a
//! stream with the wrong layout, and [`Dec`] returns [`WireError`] instead
//! of panicking so a truncated or corrupted checkpoint file degrades to a
//! recoverable error.

/// Decoding failure: the stream was shorter than the reader expected or a
/// field held an impossible value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset at which decoding failed.
    pub pos: usize,
    /// What the reader was trying to decode.
    pub what: &'static str,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error at byte {}: {}", self.pos, self.what)
    }
}

impl std::error::Error for WireError {}

/// Convenience alias for decode results.
pub type WireResult<T> = std::result::Result<T, WireError>;

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an i64 (two's-complement little-endian).
    pub fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    /// Writes an f64 by bit pattern (NaN payloads round-trip exactly).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a usize as u64.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes raw bytes (no length prefix — pair with a prior `usize`).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Consumes the encoder, returning the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-based decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Creates a decoder at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError {
                pos: self.pos,
                what,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> WireResult<u32> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> WireResult<u64> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads an i64.
    pub fn i64(&mut self) -> WireResult<i64> {
        Ok(self.u64()? as i64)
    }

    /// Reads an f64 by bit pattern.
    pub fn f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a usize (errors if the value exceeds the host's usize).
    pub fn usize(&mut self) -> WireResult<usize> {
        let pos = self.pos;
        usize::try_from(self.u64()?).map_err(|_| WireError {
            pos,
            what: "usize overflow",
        })
    }

    /// Reads a bool, rejecting anything but 0/1 (corruption check).
    pub fn bool(&mut self) -> WireResult<bool> {
        let pos = self.pos;
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError {
                pos,
                what: "bool out of range",
            }),
        }
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> WireResult<&'a [u8]> {
        self.take(n, "bytes")
    }

    /// Reads and checks a fixed tag (e.g. a section magic).
    pub fn tag(&mut self, expect: &[u8], what: &'static str) -> WireResult<()> {
        let pos = self.pos;
        let got = self.take(expect.len(), what)?;
        if got != expect {
            return Err(WireError { pos, what });
        }
        Ok(())
    }

    /// Errors unless the whole buffer was consumed (trailing-garbage check).
    pub fn done(&self) -> WireResult<()> {
        if self.remaining() != 0 {
            return Err(WireError {
                pos: self.pos,
                what: "trailing bytes",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xdead_beef);
        e.u64(u64::MAX);
        e.i64(-42);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.usize(12345);
        e.bool(true);
        e.bool(false);
        e.bytes(b"xyz");
        let buf = e.finish();

        let mut d = Dec::new(&buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        assert_eq!(d.usize().unwrap(), 12345);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.bytes(3).unwrap(), b"xyz");
        d.done().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut e = Enc::new();
        e.u64(1);
        let buf = e.finish();
        let mut d = Dec::new(&buf[..5]);
        let err = d.u64().unwrap_err();
        assert_eq!(err.pos, 0);
        assert_eq!(err.what, "u64");
    }

    #[test]
    fn bad_bool_rejected() {
        let buf = [2u8];
        let mut d = Dec::new(&buf);
        assert!(d.bool().is_err());
    }

    #[test]
    fn tag_mismatch_rejected() {
        let mut d = Dec::new(b"HDXX");
        assert!(d.tag(b"HDCP", "magic").is_err());
        let mut d2 = Dec::new(b"HDCP");
        d2.tag(b"HDCP", "magic").unwrap();
        d2.done().unwrap();
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Enc::new();
        e.u8(1);
        e.u8(2);
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        let _ = d.u8().unwrap();
        assert!(d.done().is_err());
    }
}
