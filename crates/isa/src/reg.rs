//! Register and queue identifiers.
//!
//! DISA has 32 integer registers (`r0`..`r31`, with `r0` hard-wired to zero
//! as on MIPS) and 32 double-precision floating-point registers
//! (`f0`..`f31`). The architectural queues of the decoupled machine are not
//! registers; they are accessed only through the dedicated queue
//! instructions, but they are identified by the [`Queue`] enum throughout
//! the suite.

use std::fmt;

/// Number of integer registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point registers.
pub const NUM_FP_REGS: usize = 32;

/// An integer register `r0`..`r31`. `r0` always reads as zero; writes to it
/// are discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IntReg(u8);

impl IntReg {
    /// The hard-wired zero register.
    pub const ZERO: IntReg = IntReg(0);

    /// Creates a register id. Panics if `n >= 32`.
    #[inline]
    pub fn new(n: u8) -> IntReg {
        assert!(
            (n as usize) < NUM_INT_REGS,
            "integer register out of range: r{n}"
        );
        IntReg(n)
    }

    /// Fallible constructor.
    pub fn try_new(n: u8) -> Option<IntReg> {
        ((n as usize) < NUM_INT_REGS).then_some(IntReg(n))
    }

    /// The register number.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True for the hard-wired zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for IntReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A floating-point register `f0`..`f31` holding an `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FpReg(u8);

impl FpReg {
    /// Creates a register id. Panics if `n >= 32`.
    #[inline]
    pub fn new(n: u8) -> FpReg {
        assert!((n as usize) < NUM_FP_REGS, "fp register out of range: f{n}");
        FpReg(n)
    }

    /// Fallible constructor.
    pub fn try_new(n: u8) -> Option<FpReg> {
        ((n as usize) < NUM_FP_REGS).then_some(FpReg(n))
    }

    /// The register number.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// The architectural queues of the HiDISC machine.
///
/// All queues carry raw 64-bit values (integer bits or `f64` bit patterns);
/// the receiving instruction decides the interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Queue {
    /// Load Data Queue: Access Processor → Computation Processor. Carries
    /// values loaded (or computed) by the AP that the CP consumes.
    Ldq,
    /// Store Data Queue: Computation Processor → Access Processor. Carries
    /// store data produced by the CP; paired with an address in the SAQ.
    Sdq,
    /// Computation Data Queue: Computation Processor → Access Processor.
    /// Carries *non-store* operands (e.g. addresses derived from
    /// floating-point results) — the dependences responsible for
    /// loss-of-decoupling events.
    Cdq,
    /// Control Queue: AP → CP branch-outcome tokens. The generalisation of
    /// the paper's End-Of-Data token (see DESIGN.md §3.1).
    Cq,
    /// Slip Control Queue: CMP → AP counting semaphore bounding the
    /// prefetch run-ahead distance (the paper's `PUT_SCQ`/`GET_SCQ`).
    Scq,
}

impl Queue {
    /// All queue kinds, for iteration in statistics code.
    pub const ALL: [Queue; 5] = [Queue::Ldq, Queue::Sdq, Queue::Cdq, Queue::Cq, Queue::Scq];

    /// True if speculative tail entries of this queue can be flushed on a
    /// run-ahead squash. The AP-produced queues (LDQ, CQ) buffer entries
    /// that only the CP consumes, so the producer can tag speculative
    /// pushes and retract them before the consumer sees them. SDQ/CDQ
    /// entries come from the non-speculating CP, and the SCQ is a
    /// cross-processor semaphore whose increments the CMP observes
    /// immediately — none of those can be recalled.
    pub fn flushable(self) -> bool {
        matches!(self, Queue::Ldq | Queue::Cq)
    }

    /// Short uppercase name as used in the paper ("LDQ", "SDQ", ...).
    pub fn name(self) -> &'static str {
        match self {
            Queue::Ldq => "LDQ",
            Queue::Sdq => "SDQ",
            Queue::Cdq => "CDQ",
            Queue::Cq => "CQ",
            Queue::Scq => "SCQ",
        }
    }
}

impl fmt::Display for Queue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_identity() {
        assert!(IntReg::ZERO.is_zero());
        assert!(!IntReg::new(1).is_zero());
        assert_eq!(IntReg::ZERO.index(), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(IntReg::new(17).to_string(), "r17");
        assert_eq!(FpReg::new(4).to_string(), "f4");
        assert_eq!(Queue::Ldq.to_string(), "LDQ");
    }

    #[test]
    fn try_new_bounds() {
        assert!(IntReg::try_new(31).is_some());
        assert!(IntReg::try_new(32).is_none());
        assert!(FpReg::try_new(31).is_some());
        assert!(FpReg::try_new(32).is_none());
    }

    #[test]
    #[should_panic]
    fn new_panics_out_of_range() {
        let _ = IntReg::new(32);
    }

    #[test]
    fn queue_all_distinct() {
        let mut names: Vec<_> = Queue::ALL.iter().map(|q| q.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Queue::ALL.len());
    }
}
