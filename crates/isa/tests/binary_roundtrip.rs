//! The "binary executable" form: every program must survive
//! `encode_program` → decode → re-execution with identical results —
//! the DISA analogue of writing out and reloading a SimpleScalar binary
//! with its annotation fields.

use hidisc_isa::encode::{decode_annot, decode_instr, encode_program};
use hidisc_isa::interp::Interp;
use hidisc_isa::testgen::{random_program, GenConfig};
use hidisc_isa::Program;

/// Reconstructs a program from its binary image.
fn reload(p: &Program) -> Program {
    let words = encode_program(p).expect("encodable");
    let mut out = Program::new(p.name.clone());
    for (iw, aw) in words {
        let i = decode_instr(iw).expect("decodable");
        out.push_annotated(i, decode_annot(aw));
    }
    out
}

#[test]
fn random_programs_round_trip_and_rerun_identically() {
    for seed in 0..40u64 {
        let (p, mem, regs) = random_program(seed, GenConfig::default());
        let q = reload(&p);
        assert_eq!(p.instrs(), q.instrs(), "seed {seed}: instructions differ");
        assert_eq!(p.annots(), q.annots(), "seed {seed}: annotations differ");

        let run = |prog: &Program| {
            let mut i = Interp::new(prog, mem.clone());
            for &(r, v) in &regs {
                i.set_reg(r, v);
            }
            i.run(2_000_000).unwrap();
            (i.mem.checksum(), i.stats)
        };
        let (ca, sa) = run(&p);
        let (cb, sb) = run(&q);
        assert_eq!(ca, cb, "seed {seed}: memory differs after reload");
        assert_eq!(sa, sb, "seed {seed}: stats differ after reload");
    }
}

#[test]
fn annotated_stream_binaries_round_trip() {
    // Exercise the annotation field the way the compiler uses it: build a
    // program, set every annotation feature, reload, compare.
    use hidisc_isa::annot::Stream;
    use hidisc_isa::asm::assemble;

    let mut p = assemble(
        "t",
        r"
        li r1, 10
    loop:
        ld r2, 0(r1)
        send LDQ, r2
        sub r1, r1, 1
        bne r1, r0, loop
        halt
    ",
    )
    .unwrap();
    p.annot_mut(0).trigger = Some(3);
    p.annot_mut(1).stream = Stream::Access;
    p.annot_mut(1).probable_miss = true;
    p.annot_mut(1).cmas = true;
    p.annot_mut(4).push_cq = true;
    p.annot_mut(4).scq_get = true;

    let q = reload(&p);
    assert_eq!(p.instrs(), q.instrs());
    assert_eq!(p.annots(), q.annots());
    assert_eq!(q.annot(0).trigger, Some(3));
    assert!(q.annot(4).push_cq && q.annot(4).scq_get);
}
