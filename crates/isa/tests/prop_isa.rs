//! Property tests for the ISA layer: assembler and binary-encoding
//! round-trips over arbitrary instructions, and memory laws.

use hidisc_isa::asm::assemble;
use hidisc_isa::encode::{decode_annot, decode_instr, encode_annot, encode_instr};
use hidisc_isa::instr::{BranchCond, Src, Width};
use hidisc_isa::mem::Memory;
use hidisc_isa::{
    Annot, FpBinOp, FpCmpOp, FpReg, FpUnOp, Instr, IntOp, IntReg, Queue, SpecDir, Stream,
};
use proptest::prelude::*;

fn int_reg() -> impl Strategy<Value = IntReg> {
    (0u8..32).prop_map(IntReg::new)
}

fn fp_reg() -> impl Strategy<Value = FpReg> {
    (0u8..32).prop_map(FpReg::new)
}

fn queue() -> impl Strategy<Value = Queue> {
    prop_oneof![
        Just(Queue::Ldq),
        Just(Queue::Sdq),
        Just(Queue::Cdq),
        Just(Queue::Cq),
        Just(Queue::Scq),
    ]
}

fn int_op() -> impl Strategy<Value = IntOp> {
    prop_oneof![
        Just(IntOp::Add),
        Just(IntOp::Sub),
        Just(IntOp::Mul),
        Just(IntOp::Div),
        Just(IntOp::Rem),
        Just(IntOp::And),
        Just(IntOp::Or),
        Just(IntOp::Xor),
        Just(IntOp::Sll),
        Just(IntOp::Srl),
        Just(IntOp::Sra),
        Just(IntOp::Slt),
        Just(IntOp::Sltu),
    ]
}

fn width() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::B),
        Just(Width::H),
        Just(Width::W),
        Just(Width::D)
    ]
}

fn cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ]
}

/// Arbitrary non-control instruction (control targets need a program
/// context, handled separately).
fn any_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (int_op(), int_reg(), int_reg(), int_reg()).prop_map(|(op, dst, a, b)| Instr::IntOp {
            op,
            dst,
            a,
            b: Src::Reg(b)
        }),
        (int_op(), int_reg(), int_reg(), any::<i32>()).prop_map(|(op, dst, a, i)| Instr::IntOp {
            op,
            dst,
            a,
            b: Src::Imm(i as i64)
        }),
        (int_reg(), any::<i32>()).prop_map(|(dst, i)| Instr::Li { dst, imm: i as i64 }),
        (fp_reg(), fp_reg(), fp_reg()).prop_map(|(d, a, b)| Instr::FpBin {
            op: FpBinOp::Mul,
            dst: d,
            a,
            b
        }),
        (fp_reg(), fp_reg()).prop_map(|(d, a)| Instr::FpUn {
            op: FpUnOp::Sqrt,
            dst: d,
            a
        }),
        (int_reg(), fp_reg(), fp_reg()).prop_map(|(d, a, b)| Instr::FpCmp {
            op: FpCmpOp::Le,
            dst: d,
            a,
            b
        }),
        (fp_reg(), int_reg()).prop_map(|(d, s)| Instr::CvtIf { dst: d, src: s }),
        (int_reg(), fp_reg()).prop_map(|(d, s)| Instr::CvtFi { dst: d, src: s }),
        (int_reg(), int_reg(), any::<i16>(), width(), any::<bool>()).prop_map(
            |(dst, base, off, width, signed)| Instr::Load {
                dst,
                base,
                off: off as i32,
                width,
                // signedness is meaningless (and not rendered) at D width
                signed: signed || width == Width::D,
            }
        ),
        (fp_reg(), int_reg(), any::<i16>()).prop_map(|(dst, base, off)| Instr::LoadF {
            dst,
            base,
            off: off as i32
        }),
        (int_reg(), int_reg(), any::<i16>(), width()).prop_map(|(src, base, off, width)| {
            Instr::Store {
                src,
                base,
                off: off as i32,
                width,
            }
        }),
        (fp_reg(), int_reg(), any::<i16>()).prop_map(|(src, base, off)| Instr::StoreF {
            src,
            base,
            off: off as i32
        }),
        (int_reg(), any::<i16>()).prop_map(|(base, off)| Instr::Prefetch {
            base,
            off: off as i32
        }),
        (queue(), int_reg(), any::<i16>(), width(), any::<bool>()).prop_map(
            |(q, base, off, width, signed)| Instr::LoadQ {
                q,
                base,
                off: off as i32,
                width,
                signed: signed || width == Width::D,
            }
        ),
        (queue(), int_reg(), any::<i16>(), width()).prop_map(|(q, base, off, width)| {
            Instr::StoreQ {
                q,
                base,
                off: off as i32,
                width,
            }
        }),
        (queue(), int_reg()).prop_map(|(q, src)| Instr::SendI { q, src }),
        (queue(), fp_reg()).prop_map(|(q, src)| Instr::SendF { q, src }),
        (queue(), int_reg()).prop_map(|(q, dst)| Instr::RecvI { q, dst }),
        (queue(), fp_reg()).prop_map(|(q, dst)| Instr::RecvF { q, dst }),
        Just(Instr::PutScq),
        Just(Instr::GetScq),
        Just(Instr::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn binary_encoding_round_trips(i in any_instr()) {
        let w = encode_instr(&i).unwrap();
        prop_assert_eq!(decode_instr(w).unwrap(), i);
    }

    #[test]
    fn assembler_round_trips_instruction_sequences(
        instrs in prop::collection::vec(any_instr(), 1..40)
    ) {
        let mut p = hidisc_isa::Program::new("prop");
        for i in &instrs {
            p.push(*i);
        }
        p.push(Instr::Halt);
        let text = p.to_string();
        let p2 = assemble("prop", &text).unwrap();
        prop_assert_eq!(p.instrs(), p2.instrs());
    }

    #[test]
    fn control_instructions_round_trip(
        n in 2u32..20,
        c in cond(),
        a in int_reg(),
        b in int_reg(),
    ) {
        let mut p = hidisc_isa::Program::new("prop");
        for _ in 0..n {
            p.push(Instr::Nop);
        }
        // branch backwards into the nops, jump to halt
        p.push(Instr::Branch { cond: c, a, b, target: n / 2 });
        let halt_at = p.len() + 1;
        p.push(Instr::Jump { target: halt_at });
        p.push(Instr::Halt);
        let text = p.to_string();
        let p2 = assemble("prop", &text).unwrap();
        prop_assert_eq!(p.instrs(), p2.instrs());
    }

    #[test]
    fn annot_encoding_round_trips(
        access in any::<bool>(),
        cmas in any::<bool>(),
        push_cq in any::<bool>(),
        miss in any::<bool>(),
        scq in any::<bool>(),
        trig in prop::option::of(0u32..(1 << 24)),
        spec in prop::option::of(any::<bool>()),
    ) {
        let a = Annot {
            stream: if access { Stream::Access } else { Stream::Computation },
            cmas,
            push_cq,
            probable_miss: miss,
            scq_get: scq,
            trigger: trig,
            speculate: spec.map(|t| if t { SpecDir::Taken } else { SpecDir::NotTaken }),
        };
        prop_assert_eq!(decode_annot(encode_annot(&a).unwrap()), a);
    }

    #[test]
    fn memory_read_back_what_you_wrote(
        writes in prop::collection::vec((0u64..1 << 20, any::<i64>()), 1..64)
    ) {
        let mut m = Memory::new();
        let mut model = std::collections::HashMap::new();
        for (slot, v) in &writes {
            let addr = slot * 8;
            m.write_i64(addr, *v).unwrap();
            model.insert(addr, *v);
        }
        for (addr, v) in &model {
            prop_assert_eq!(m.read_i64(*addr).unwrap(), *v);
        }
    }

    #[test]
    fn memory_byte_and_word_views_agree(v in any::<i64>(), slot in 0u64..1024) {
        let addr = slot * 8;
        let mut m = Memory::new();
        m.write_i64(addr, v).unwrap();
        let mut from_bytes = 0u64;
        for k in 0..8 {
            from_bytes |= (m.read_u8(addr + k) as u64) << (8 * k);
        }
        prop_assert_eq!(from_bytes as i64, v);
    }

    #[test]
    fn interp_is_deterministic(seed in any::<u64>()) {
        use hidisc_isa::testgen::{random_program, GenConfig};
        use hidisc_isa::interp::Interp;
        let (p, mem, regs) = random_program(seed, GenConfig::default());
        let run = |mem: Memory| {
            let mut i = Interp::new(&p, mem);
            for &(r, v) in &regs {
                i.set_reg(r, v);
            }
            i.run(2_000_000).unwrap();
            (i.mem.checksum(), i.stats)
        };
        let (c1, s1) = run(mem.clone());
        let (c2, s2) = run(mem);
        prop_assert_eq!(c1, c2);
        prop_assert_eq!(s1, s2);
    }
}
