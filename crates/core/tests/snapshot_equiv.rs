//! Differential proof that snapshot/restore is invisible: for every
//! benchmark of the suite and every machine model, a run interrupted at
//! mid-flight — whether resumed in place, restored from an in-memory
//! [`hidisc::MachineSnapshot`], or rebuilt from the on-disk checkpoint
//! byte format — must produce exactly the statistics, cycle count and
//! final memory of the uninterrupted run.
//!
//! See DESIGN.md, "State snapshots & sampled simulation", for the
//! invariant this test pins down.

use hidisc::{Machine, MachineConfig, Model};
use hidisc_slicer::{compile, CompiledWorkload, CompilerConfig, ExecEnv};
use hidisc_workloads::{suite, Scale, Workload};
use proptest::prelude::*;

fn env_of(w: &Workload) -> ExecEnv {
    ExecEnv {
        regs: w.regs.clone(),
        mem: w.mem.clone(),
        max_steps: w.max_steps,
    }
}

/// Arbitrary id standing in for the workload hash a real caller derives
/// from name/scale/seed.
const WORKLOAD_ID: u64 = 0x1517_c0de;

/// Runs the interrupted-and-resumed variants against the uninterrupted
/// baseline for one (workload, model, config) point.
fn check_point(
    name: &str,
    model: Model,
    compiled: &CompiledWorkload,
    env: &ExecEnv,
    cfg: MachineConfig,
) {
    let work = compiled.profile.dyn_instrs;
    let baseline = Machine::new(model, compiled, env, cfg)
        .run(work)
        .unwrap_or_else(|e| panic!("{name}/{model}: baseline run failed: {e}"));
    let stop_at = baseline.cycles / 2;

    // Split run: stop at the midpoint, snapshot, keep going in place.
    let mut split = Machine::new(model, compiled, env, cfg);
    let finished = split
        .run_to_cycle(stop_at)
        .unwrap_or_else(|e| panic!("{name}/{model}: run_to_cycle failed: {e}"));
    assert!(!finished, "{name}/{model}: finished before the midpoint");
    assert_eq!(split.now(), stop_at, "{name}/{model}: stop overshot");
    let snap = split.snapshot();
    let bytes = split.save_checkpoint(WORKLOAD_ID);
    let split_stats = split
        .run(work)
        .unwrap_or_else(|e| panic!("{name}/{model}: resumed run failed: {e}"));
    assert!(
        baseline.sim_eq(&split_stats),
        "{name}/{model}: split run diverged:\nbase: {baseline:#?}\nsplit: {split_stats:#?}"
    );

    // Restore the in-memory snapshot into the (now finished) machine and
    // run to the end again.
    let mut restored = Machine::new(model, compiled, env, cfg);
    restored.restore(&snap);
    assert_eq!(restored.now(), stop_at);
    let restored_stats = restored
        .run(work)
        .unwrap_or_else(|e| panic!("{name}/{model}: restored run failed: {e}"));
    assert!(
        baseline.sim_eq(&restored_stats),
        "{name}/{model}: snapshot/restore diverged"
    );

    // Rebuild a fresh machine from the serialized checkpoint bytes.
    let mut from_disk = Machine::new(model, compiled, env, cfg);
    from_disk
        .load_checkpoint(&bytes, WORKLOAD_ID)
        .unwrap_or_else(|e| panic!("{name}/{model}: load_checkpoint failed: {e}"));
    assert_eq!(from_disk.now(), stop_at);
    let disk_stats = from_disk
        .run(work)
        .unwrap_or_else(|e| panic!("{name}/{model}: checkpointed run failed: {e}"));
    assert!(
        baseline.sim_eq(&disk_stats),
        "{name}/{model}: disk checkpoint diverged:\nbase: {baseline:#?}\ndisk: {disk_stats:#?}"
    );
}

/// Every `Scale::Test` workload × every model, fast-forward off and on:
/// interrupting at the midpoint (resume / restore / disk round-trip) is
/// simulation-identical to never stopping.
#[test]
fn snapshot_restore_is_stat_identical_across_suite_and_models() {
    for w in suite(Scale::Test, 42) {
        let env = env_of(&w);
        let compiled = compile(&w.prog, &env, &CompilerConfig::default())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
        for model in Model::ALL {
            for ff in [false, true] {
                let mut cfg = MachineConfig::paper();
                cfg.fast_forward = ff;
                check_point(w.name, model, &compiled, &env, cfg);
            }
        }
    }
}

/// The paper's Figure-10 high-latency point stalls far more (long
/// in-flight MSHR state crosses the snapshot boundary); equivalence must
/// hold there too.
#[test]
fn snapshot_restore_is_stat_identical_at_high_latency() {
    let w = &suite(Scale::Test, 7)[2]; // pointer: serial chase, stall-heavy
    let env = env_of(w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();
    for model in Model::ALL {
        let mut cfg = MachineConfig::paper_with_latency(16, 160);
        cfg.fast_forward = true;
        check_point(w.name, model, &compiled, &env, cfg);
    }
}

/// Header validation: a checkpoint only loads into the machine it
/// describes, and every mismatch is a typed error, never a panic.
#[test]
fn checkpoint_header_is_validated() {
    let w = &suite(Scale::Test, 42)[0];
    let env = env_of(w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();
    let mut m = Machine::new(Model::HiDisc, &compiled, &env, MachineConfig::paper());
    m.run_to_cycle(100).unwrap();
    let bytes = m.save_checkpoint(WORKLOAD_ID);

    // Wrong workload id.
    let mut fresh = Machine::new(Model::HiDisc, &compiled, &env, MachineConfig::paper());
    assert!(fresh.load_checkpoint(&bytes, WORKLOAD_ID + 1).is_err());
    // Wrong model.
    let mut fresh = Machine::new(Model::CpAp, &compiled, &env, MachineConfig::paper());
    assert!(fresh.load_checkpoint(&bytes, WORKLOAD_ID).is_err());
    // Wrong configuration.
    let mut fresh = Machine::new(
        Model::HiDisc,
        &compiled,
        &env,
        MachineConfig::paper_with_latency(16, 160),
    );
    assert!(fresh.load_checkpoint(&bytes, WORKLOAD_ID).is_err());
    // Garbage magic.
    let mut garbled = bytes.clone();
    garbled[0] ^= 0xff;
    let mut fresh = Machine::new(Model::HiDisc, &compiled, &env, MachineConfig::paper());
    assert!(fresh.load_checkpoint(&garbled, WORKLOAD_ID).is_err());
    // The pristine bytes still load.
    assert!(fresh.load_checkpoint(&bytes, WORKLOAD_ID).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Disk-format property: for a machine stopped at an arbitrary cycle,
    /// save → load → save reproduces the exact same bytes (the format has
    /// one canonical encoding), and every truncation of the byte stream
    /// is a graceful error, never a panic.
    #[test]
    fn checkpoint_bytes_round_trip_exactly(stop in 1u64..1500, model_ix in 0usize..4) {
        let w = &suite(Scale::Test, 42)[2]; // pointer
        let env = env_of(w);
        let compiled = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();
        let model = Model::ALL[model_ix];

        let mut m = Machine::new(model, &compiled, &env, MachineConfig::paper());
        m.run_to_cycle(stop).unwrap();
        let bytes = m.save_checkpoint(WORKLOAD_ID);

        let mut restored = Machine::new(model, &compiled, &env, MachineConfig::paper());
        restored.load_checkpoint(&bytes, WORKLOAD_ID).unwrap();
        prop_assert_eq!(restored.now(), m.now());
        prop_assert_eq!(restored.state_digest(), m.state_digest());
        let again = restored.save_checkpoint(WORKLOAD_ID);
        prop_assert_eq!(&again, &bytes, "re-encoding changed the byte stream");

        // Truncations degrade to errors.
        for cut in [bytes.len() / 3, bytes.len() / 2, bytes.len() - 1] {
            let mut fresh = Machine::new(model, &compiled, &env, MachineConfig::paper());
            prop_assert!(fresh.load_checkpoint(&bytes[..cut], WORKLOAD_ID).is_err());
        }
    }
}
