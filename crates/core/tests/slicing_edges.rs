//! Edge cases of the stream separator's communication planning, verified
//! both structurally and by functional decoupled equivalence:
//!
//! * store data with *mixed* reaching definitions (one stream per path)
//!   must fall back from the SDQ to the def-position CDQ discipline;
//! * constants used by both streams are rematerialised, not communicated;
//! * path-dependent LDQ traffic still matches exactly.

use hidisc::funcval;
use hidisc::{run_model, MachineConfig, Model};
use hidisc_isa::asm::assemble;
use hidisc_isa::mem::Memory;
use hidisc_isa::{Instr, Queue};
use hidisc_slicer::{compile, CompilerConfig, ExecEnv};

fn compiled(src: &str, cells: &[(u64, i64)]) -> (hidisc_slicer::CompiledWorkload, ExecEnv) {
    let prog = assemble("edge", src).unwrap();
    let mut mem = Memory::new();
    for &(a, v) in cells {
        mem.write_i64(a, v).unwrap();
    }
    let env = ExecEnv {
        regs: vec![],
        mem,
        max_steps: 1_000_000,
    };
    let w = compile(&prog, &env, &CompilerConfig::default()).unwrap();
    funcval::validate(&w, &env).expect("decoupled equivalence");
    (w, env)
}

fn count(p: &hidisc_isa::Program, f: impl Fn(&Instr) -> bool) -> usize {
    p.instrs().iter().filter(|i| f(i)).count()
}

#[test]
fn mixed_definition_store_data_uses_cdq_not_sdq() {
    // r3 is defined by an AS load on one path and by CS arithmetic on the
    // other; the store must read the register (CDQ shadow), not the SDQ.
    let (w, env) = compiled(
        r"
            li r1, 0x1000
            ld r9, 0x100(r1)
            beq r9, r0, else
            ld r3, 0(r1)
            j join
        else:
            ld r4, 8(r1)
            mul r5, r4, r4
            cvt.d.l f1, r5
            cvt.l.d r3, f1
        join:
            sd r3, 16(r1)
            halt
        ",
        &[(0x1100, 1), (0x1000, 42), (0x1008, 6)],
    );
    // No SDQ store: the store reads its register.
    assert_eq!(
        count(&w.access, |i| matches!(i, Instr::StoreQ { .. })),
        0,
        "{}",
        w.access
    );
    // The CS definition ships through the CDQ at its program point.
    assert!(
        count(&w.access, |i| matches!(
            i,
            Instr::RecvI { q: Queue::Cdq, .. }
        )) >= 1
    );
    // All four models still agree.
    let golden = run_model(Model::Superscalar, &w, &env, MachineConfig::paper()).unwrap();
    for m in [Model::CpAp, Model::HiDisc] {
        let st = run_model(m, &w, &env, MachineConfig::paper()).unwrap();
        assert_eq!(st.mem_checksum, golden.mem_checksum, "{m}");
    }
}

#[test]
fn pure_cs_store_data_keeps_the_sdq_fast_path() {
    // Both paths produce the store data in the CS: SDQ applies.
    let (w, _) = compiled(
        r"
            li r1, 0x1000
            ld r9, 0x100(r1)
            ld r2, 0(r1)
            beq r9, r0, else
            add r3, r2, 1
            j join
        else:
            add r3, r2, 2
        join:
            sd r3, 16(r1)
            halt
        ",
        &[(0x1100, 1), (0x1000, 10)],
    );
    assert_eq!(
        count(&w.access, |i| matches!(
            i,
            Instr::StoreQ { q: Queue::Sdq, .. }
        )),
        1
    );
    assert_eq!(
        count(&w.cs, |i| matches!(i, Instr::SendI { q: Queue::Sdq, .. })),
        1
    );
    assert_eq!(
        count(&w.access, |i| matches!(
            i,
            Instr::RecvI { q: Queue::Cdq, .. }
        )),
        0
    );
}

#[test]
fn path_dependent_ldq_traffic_matches() {
    // A load under a conditional: its LDQ push and the CS recv sit
    // at the same program point, so taken/not-taken paths stay balanced.
    let (w, env) = compiled(
        r"
            li r1, 0x1000
            li r6, 4
        loop:
            ld r9, 0x100(r1)
            beq r9, r0, skip
            ld r2, 0(r1)
            cvt.d.l f1, r2
            add.d f2, f2, f1
        skip:
            add r1, r1, 8
            sub r6, r6, 1
            bne r6, r0, loop
            s.d f2, 0x2000(r0)
            halt
        ",
        &[(0x1100, 1), (0x1110, 1), (0x1000, 3), (0x1010, 5)],
    );
    let st = run_model(Model::CpAp, &w, &env, MachineConfig::paper()).unwrap();
    // Queue balance at termination (the decisive invariant).
    assert_eq!(st.queues[0].pushes, st.queues[0].pops, "LDQ balance");
    assert_eq!(st.queues[3].pushes, st.queues[3].pops, "CQ balance");
}

#[test]
fn constants_used_by_both_streams_are_rematerialised() {
    let (w, _) = compiled(
        r"
            li r1, 0x1000
            li r7, 3
            ld r2, 0(r1)
            add r3, r2, r7
            cvt.d.l f1, r3
            mul r8, r7, 8
            add r9, r1, r8
            s.d f1, 0(r9)
            halt
        ",
        &[(0x1000, 5)],
    );
    // r7 is used by the CS (add feeding fp) and by the AS (address
    // arithmetic): both streams materialise it; no queue traffic for it.
    let cs_li = count(&w.cs, |i| matches!(i, Instr::Li { imm: 3, .. }));
    let as_li = count(&w.access, |i| matches!(i, Instr::Li { imm: 3, .. }));
    assert!(
        cs_li >= 1 && as_li >= 1,
        "cs {cs_li} as {as_li}\nCS:\n{}\nAS:\n{}",
        w.cs,
        w.access
    );
    assert_eq!(
        count(&w.access, |i| matches!(
            i,
            Instr::RecvI { q: Queue::Cdq, .. }
        )),
        0
    );
}
