//! Differential proof that telemetry is simulation-invisible: for every
//! benchmark of the suite and every machine model, a run with every event
//! category and interval-metrics sampling enabled must produce exactly
//! the statistics, cycle count and final memory of a run with telemetry
//! off. Recording only ever *reads* simulated state.
//!
//! See DESIGN.md, "Telemetry", for the invariant this test pins down.

use hidisc::telemetry::{Category, TraceConfig};
use hidisc::{Machine, MachineConfig, Model};
use hidisc_slicer::{compile, CompilerConfig, ExecEnv};
use hidisc_workloads::{suite, Scale, Workload};

fn env_of(w: &Workload) -> ExecEnv {
    ExecEnv {
        regs: w.regs.clone(),
        mem: w.mem.clone(),
        max_steps: w.max_steps,
    }
}

/// Every `Scale::Test` workload × every model: full telemetry (all event
/// categories + interval metrics, with fast-forward active so the jump
/// capping interacts with the sample grid) versus telemetry off must be
/// simulation-identical — and the traced runs must actually have recorded
/// events of every category somewhere in the suite, or the test is
/// vacuous.
#[test]
fn full_telemetry_is_stat_identical_across_suite_and_models() {
    let mut per_category = [0u64; 5];
    let mut samples_total = 0usize;
    for w in suite(Scale::Test, 42) {
        let env = env_of(&w);
        let compiled = compile(&w.prog, &env, &CompilerConfig::default())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
        for model in Model::ALL {
            let mut plain_cfg = MachineConfig::paper();
            plain_cfg.fast_forward = true;
            let mut traced_cfg = plain_cfg;
            traced_cfg.trace = TraceConfig::ALL_EVENTS.with_metrics_interval(64);

            let plain = Machine::new(model, &compiled, &env, plain_cfg)
                .run(compiled.profile.dyn_instrs)
                .unwrap_or_else(|e| panic!("{}/{model}: plain run failed: {e}", w.name));
            let mut traced_m = Machine::new(model, &compiled, &env, traced_cfg);
            let traced = traced_m
                .run(compiled.profile.dyn_instrs)
                .unwrap_or_else(|e| panic!("{}/{model}: traced run failed: {e}", w.name));

            assert_eq!(
                plain.cycles, traced.cycles,
                "{}/{model}: cycle count diverged under telemetry",
                w.name
            );
            assert_eq!(
                plain.mem_checksum, traced.mem_checksum,
                "{}/{model}: memory diverged under telemetry",
                w.name
            );
            assert!(
                plain.sim_eq(&traced),
                "{}/{model}: statistics diverged under telemetry:\n\
                 plain: {plain:#?}\ntraced: {traced:#?}",
                w.name
            );

            let tel = traced_m.telemetry();
            for e in tel.events() {
                per_category[e.data.category() as usize] += 1;
            }
            if let Some(m) = tel.metrics() {
                samples_total += m.len();
            }
        }
    }
    for (i, c) in Category::ALL.into_iter().enumerate() {
        assert!(
            per_category[i] > 0,
            "no `{}` events recorded anywhere in the suite (vacuous test)",
            c.name()
        );
    }
    assert!(
        samples_total > 0,
        "no interval-metrics samples recorded anywhere in the suite"
    );
}

/// The interval recorder's derived statistics must be internally
/// consistent on a stall-heavy workload: samples land exactly on the
/// interval grid, the committed counter is monotone, and every histogram's
/// percentiles are ordered.
#[test]
fn interval_metrics_are_consistent_on_pointer_chase() {
    let w = suite(Scale::Test, 7)
        .into_iter()
        .find(|w| w.name == "pointer")
        .expect("suite lost its pointer workload");
    let env = env_of(&w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();
    let interval = 128;
    let mut cfg = MachineConfig::paper();
    cfg.fast_forward = true;
    cfg.trace = TraceConfig::ALL_EVENTS.with_metrics_interval(interval);
    let mut m = Machine::new(Model::HiDisc, &compiled, &env, cfg);
    let stats = m.run(compiled.profile.dyn_instrs).unwrap();

    let metrics = m.telemetry().metrics().expect("metrics enabled");
    assert!(
        !metrics.is_empty(),
        "no samples on a {}-cycle run",
        stats.cycles
    );
    let mut last_cycle = 0;
    let mut last_committed = 0;
    for s in metrics.samples() {
        assert_eq!(s.cycle % interval, 0, "sample off the interval grid");
        assert!(s.cycle > last_cycle || last_cycle == 0);
        assert!(s.committed >= last_committed, "committed went backwards");
        last_cycle = s.cycle;
        last_committed = s.committed;
    }
    // Expected sample count: one per full interval survived by the run
    // (bounded by the ring capacity) — fast-forward must not have jumped
    // over any sample point.
    let expect = (stats.cycles / interval) as usize;
    assert_eq!(
        metrics.len() + metrics.dropped() as usize,
        expect,
        "fast-forward skipped a sample point"
    );

    let h = &metrics.miss_latency;
    assert!(h.total() > 0, "pointer chase recorded no demand misses");
    assert!(h.p50() <= h.p95() && h.p95() <= h.p99() && h.p99() <= h.max());
}
