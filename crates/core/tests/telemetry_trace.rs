//! Chrome-trace export and observer early-stop semantics.
//!
//! The golden test pins the exact JSON the [`ChromeTraceSink`] emits for
//! a hand-built event sequence; the workload test validates a full run's
//! trace with a minimal JSON grammar checker (no parser dependency) and
//! proves the export is deterministic. The observer tests pin the
//! contract that stopping observation mid-stall-window never loses an
//! observation point to fast-forward.

use hidisc::telemetry::{
    ChromeTraceSink, EventData, MissKind, Telemetry, TraceConfig, SOURCE_CMP, SOURCE_MACHINE,
};
use hidisc::{Machine, MachineConfig, Model};
use hidisc_isa::Queue;
use hidisc_slicer::{compile, CompilerConfig, ExecEnv};
use hidisc_workloads::{suite, Scale, Workload};

fn env_of(w: &Workload) -> ExecEnv {
    ExecEnv {
        regs: w.regs.clone(),
        mem: w.mem.clone(),
        max_steps: w.max_steps,
    }
}

// -----------------------------------------------------------------
// A minimal JSON validator: full grammar, no values retained.
// -----------------------------------------------------------------

struct JsonCheck<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> JsonCheck<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => self.i += 2,
                _ => self.i += 1,
            }
        }
        Err("unterminated string".into())
    }

    fn value(&mut self) -> Result<(), String> {
        self.ws();
        match self.b.get(self.i) {
            Some(b'{') => {
                self.i += 1;
                self.ws();
                if self.b.get(self.i) == Some(&b'}') {
                    self.i += 1;
                    return Ok(());
                }
                loop {
                    self.ws();
                    self.string()?;
                    self.ws();
                    self.eat(b':')?;
                    self.value()?;
                    self.ws();
                    match self.b.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("bad object at byte {}", self.i)),
                    }
                }
            }
            Some(b'[') => {
                self.i += 1;
                self.ws();
                if self.b.get(self.i) == Some(&b']') {
                    self.i += 1;
                    return Ok(());
                }
                loop {
                    self.value()?;
                    self.ws();
                    match self.b.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("bad array at byte {}", self.i)),
                    }
                }
            }
            Some(b'"') => self.string(),
            Some(b't') => self.lit("true"),
            Some(b'f') => self.lit("false"),
            Some(b'n') => self.lit("null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                self.i += 1;
                while self.b.get(self.i).is_some_and(|c| {
                    c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
                }) {
                    self.i += 1;
                }
                Ok(())
            }
            _ => Err(format!("bad value at byte {}", self.i)),
        }
    }

    fn lit(&mut self, s: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }
}

fn validate_json(s: &str) -> Result<(), String> {
    let mut p = JsonCheck {
        b: s.as_bytes(),
        i: 0,
    };
    p.value()?;
    p.ws();
    if p.i == p.b.len() {
        Ok(())
    } else {
        Err(format!("trailing garbage at byte {}", p.i))
    }
}

/// Exact document for a hand-built event sequence covering every `ph`
/// kind the sink emits (metadata, instant, complete, counter).
#[test]
fn chrome_sink_golden_fixture() {
    let mut tel = Telemetry::new(TraceConfig::ALL_EVENTS);
    tel.set_clock(5);
    tel.set_source(0);
    tel.emit(EventData::Fetch { pc: 3 });
    tel.emit(EventData::Issue {
        seq: 1,
        pc: 3,
        complete_at: 9,
    });
    tel.emit(EventData::MemMiss {
        addr: 64,
        kind: MissKind::Load,
        l2_hit: false,
        ready_at: 105,
    });
    tel.set_clock(6);
    tel.emit(EventData::QueuePush {
        q: Queue::Ldq,
        depth: 2,
    });
    tel.set_source(SOURCE_CMP);
    tel.emit(EventData::CmpSpawn { cmas: 0, live: 1 });
    tel.set_source(SOURCE_MACHINE);
    tel.emit(EventData::FastForward { skipped: 40 });

    let mut sink = ChromeTraceSink::new(&["CP"]);
    tel.replay(&mut sink);
    let got = sink.finish(None);

    let want = concat!(
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n",
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"hidisc\"}},\n",
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"CP\"}},\n",
        "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"mem\"}},\n",
        "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\",\"args\":{\"name\":\"cmp\"}},\n",
        "{\"ph\":\"M\",\"pid\":1,\"tid\":3,\"name\":\"thread_name\",\"args\":{\"name\":\"machine\"}},\n",
        "{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":5,\"s\":\"t\",\"cat\":\"pipeline\",\"name\":\"fetch\",\"args\":{\"pc\":3}},\n",
        "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":5,\"dur\":4,\"cat\":\"pipeline\",\"name\":\"issue\",\"args\":{\"pc\":3,\"seq\":1}},\n",
        "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":5,\"dur\":100,\"cat\":\"mem\",\"name\":\"miss-load\",\"args\":{\"addr\":64,\"kind\":\"load\",\"l2Hit\":false}},\n",
        "{\"ph\":\"C\",\"pid\":1,\"ts\":6,\"cat\":\"queue\",\"name\":\"LDQ\",\"args\":{\"depth\":2}},\n",
        "{\"ph\":\"i\",\"pid\":1,\"tid\":2,\"ts\":6,\"s\":\"t\",\"cat\":\"cmp\",\"name\":\"cmp-spawn\",\"args\":{\"cmas\":0}},\n",
        "{\"ph\":\"C\",\"pid\":1,\"ts\":6,\"cat\":\"cmp\",\"name\":\"cmp-live\",\"args\":{\"threads\":1}},\n",
        "{\"ph\":\"X\",\"pid\":1,\"tid\":3,\"ts\":6,\"dur\":40,\"cat\":\"machine\",\"name\":\"fast-forward\",\"args\":{\"skipped\":40}}\n",
        "]\n",
        "}\n",
    );
    assert_eq!(got, want);
    validate_json(&got).expect("golden fixture is not valid JSON");
}

/// A real run's trace must be grammatically valid JSON, carry events of
/// the pipeline/mem/queue/cmp categories, and export deterministically.
/// (`dm` is the suite's fork-heaviest workload, so every lane lights up.)
#[test]
fn dm_workload_trace_is_valid_and_deterministic() {
    let w = suite(Scale::Test, 7)
        .into_iter()
        .find(|w| w.name == "dm")
        .expect("suite lost its dm workload");
    let env = env_of(&w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();
    let mut cfg = MachineConfig::paper();
    cfg.fast_forward = true;
    cfg.trace = TraceConfig::ALL_EVENTS.with_metrics_interval(256);

    let export = || {
        let mut m = Machine::new(Model::HiDisc, &compiled, &env, cfg);
        let stats = m.run(compiled.profile.dyn_instrs).unwrap();
        let mut sink = ChromeTraceSink::new(&["CP", "AP"]);
        m.telemetry().replay(&mut sink);
        (sink.finish(m.telemetry().metrics()), stats)
    };
    let (doc, stats) = export();

    validate_json(&doc).unwrap_or_else(|e| panic!("invalid trace JSON: {e}"));
    for cat in ["pipeline", "mem", "queue", "cmp"] {
        assert!(
            doc.contains(&format!("\"cat\":\"{cat}\"")),
            "trace has no `{cat}` events"
        );
    }
    assert_eq!(
        stats.ff_jumps > 0,
        doc.contains("\"cat\":\"machine\""),
        "fast-forward jumps and machine-lane events disagree"
    );
    assert!(
        doc.contains("\"hidiscMetrics\":"),
        "metrics side table missing"
    );
    assert!(doc.contains("\"missLatency\":"));

    let (doc2, _) = export();
    assert_eq!(doc, doc2, "trace export is not deterministic");
}

/// Satellite contract: an observer that stops (`false`) in the middle of
/// a stall window — exactly where fast-forward wants to jump — must still
/// have been called on every cycle up to and including its stop point,
/// in order and without gaps, and the rest of the run (now free to jump)
/// must finish with unchanged simulation statistics.
#[test]
fn early_stop_mid_stall_window_observes_every_cycle_up_to_stop() {
    let w = suite(Scale::Test, 7)
        .into_iter()
        .find(|w| w.name == "pointer")
        .expect("suite lost its pointer workload");
    let env = env_of(&w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();
    let mut cfg = MachineConfig::paper();
    cfg.fast_forward = true;
    cfg.ff_check = true;

    let stop_at: u64 = 400;
    let mut seen: Vec<u64> = Vec::new();
    let observed = Machine::new(Model::HiDisc, &compiled, &env, cfg)
        .run_observed(compiled.profile.dyn_instrs, |m: &Machine| {
            seen.push(m.now());
            m.now() < stop_at
        })
        .unwrap();

    let expect: Vec<u64> = (1..=stop_at.min(observed.cycles)).collect();
    assert_eq!(seen, expect, "observation points skipped or reordered");
    assert!(
        observed.cycles > stop_at,
        "workload too short to stop observation mid-run"
    );
    assert!(
        observed.ff_jumps > 0,
        "fast-forward never engaged after observation stopped (vacuous test)"
    );

    let plain = Machine::new(Model::HiDisc, &compiled, &env, cfg)
        .run(compiled.profile.dyn_instrs)
        .unwrap();
    assert!(
        plain.sim_eq(&observed),
        "early-stopped observed run diverged from plain run"
    );
    assert_eq!(plain.cycles, observed.cycles);
}
