//! The service's result cache is only sound if the canonical config
//! hash is (a) deterministic — the same configuration always produces
//! the same key — and (b) sensitive — any simulation-relevant field
//! change produces a different key, so distinct experiments can never
//! alias to one cache slot.

use hidisc::telemetry::TraceConfig;
use hidisc::{MachineConfig, Scheduler};
use proptest::prelude::*;

fn build(l2: u32, mem: u32, scq: usize, sched: Scheduler, max_cycles: u64) -> MachineConfig {
    let mut q = MachineConfig::paper().queues;
    q.scq = scq;
    MachineConfig::builder()
        .latency(l2, mem)
        .queues(q)
        .scheduler(sched)
        .max_cycles(max_cycles)
        .build()
        .expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Determinism: two configs built from the same parameters hash to
    /// the same key (and the same canonical byte string).
    #[test]
    fn identical_configs_hash_identically(
        l2 in 1u32..64,
        mem in 50u32..300,
        scq in 1usize..64,
        ready in any::<bool>(),
        max_cycles in 1_000u64..1_000_000_000,
    ) {
        let sched = if ready { Scheduler::ReadyList } else { Scheduler::Scan };
        let a = build(l2, mem, scq, sched, max_cycles);
        let b = build(l2, mem, scq, sched, max_cycles);
        prop_assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        prop_assert_eq!(a.canonical_hash(), b.canonical_hash());
    }

    /// Sensitivity on the swept axes: a change to the L2 latency, memory
    /// latency, SCQ depth, or scheduler always changes the key.
    #[test]
    fn sweep_axis_changes_change_the_key(
        l2 in 1u32..64,
        mem in 50u32..300,
        scq in 1usize..64,
        ready in any::<bool>(),
    ) {
        let sched = if ready { Scheduler::ReadyList } else { Scheduler::Scan };
        let other_sched = if ready { Scheduler::Scan } else { Scheduler::ReadyList };
        let base = build(l2, mem, scq, sched, 1_000_000).canonical_hash();
        prop_assert!(base != build(l2 + 1, mem, scq, sched, 1_000_000).canonical_hash());
        prop_assert!(base != build(l2, mem + 1, scq, sched, 1_000_000).canonical_hash());
        prop_assert!(base != build(l2, mem, scq + 1, sched, 1_000_000).canonical_hash());
        prop_assert!(base != build(l2, mem, scq, other_sched, 1_000_000).canonical_hash());
    }
}

/// Every simulation-relevant field class perturbs the key; telemetry
/// settings (excluded by design — they are proven simulation-invisible)
/// do not.
#[test]
fn single_field_mutations_change_the_key() {
    let base = MachineConfig::paper();
    let base_key = base.canonical_hash();

    type Mutation = (&'static str, fn(&mut MachineConfig));
    let mutations: [Mutation; 12] = [
        ("mem.l2.latency", |c| c.mem.l2.latency += 1),
        ("mem.mem_latency", |c| c.mem.mem_latency += 1),
        ("mem.l1.ways", |c| c.mem.l1.ways *= 2),
        ("mem.l1.sets", |c| c.mem.l1.sets *= 2),
        ("queues.scq", |c| c.queues.scq += 1),
        ("queues.ldq", |c| c.queues.ldq += 1),
        ("cp.scheduler", |c| {
            c.cp.scheduler = match c.cp.scheduler {
                Scheduler::ReadyList => Scheduler::Scan,
                Scheduler::Scan => Scheduler::ReadyList,
            }
        }),
        ("ap.ruu_size", |c| c.ap.ruu_size += 1),
        ("cmp.max_threads", |c| c.cmp.max_threads += 1),
        ("deadlock_cycles", |c| c.deadlock_cycles += 1),
        ("max_cycles", |c| c.max_cycles += 1),
        ("fast_forward", |c| c.fast_forward = !c.fast_forward),
    ];
    let mut keys = vec![base_key];
    for (what, mutate) in mutations {
        let mut c = base;
        mutate(&mut c);
        let key = c.canonical_hash();
        assert_ne!(key, base_key, "mutating {what} left the key unchanged");
        keys.push(key);
    }
    // The mutants are also pairwise distinct — no accidental collisions
    // in this neighborhood of config space.
    let distinct: std::collections::HashSet<u64> = keys.iter().copied().collect();
    assert_eq!(distinct.len(), keys.len(), "two mutants collided");

    // Telemetry is simulation-invisible and deliberately not hashed: a
    // traced run may reuse an untraced run's cached result.
    let mut traced = base;
    traced.trace = TraceConfig::ALL_EVENTS.with_metrics_interval(100);
    assert_eq!(traced.canonical_hash(), base_key);
}
