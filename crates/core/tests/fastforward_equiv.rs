//! Differential proof that the idle-cycle fast-forward is invisible: for
//! every benchmark of the suite and every machine model, a run with
//! fast-forward enabled (including per-jump differential checking against
//! a cycle-stepped shadow machine) must produce exactly the statistics,
//! cycle count and final memory of the plain per-cycle loop.
//!
//! See DESIGN.md, "Idle-cycle fast-forward", for the invariant this test
//! pins down.

use hidisc::{Machine, MachineConfig, Model};
use hidisc_slicer::{compile, CompilerConfig, ExecEnv};
use hidisc_workloads::{suite, Scale, Workload};

fn env_of(w: &Workload) -> ExecEnv {
    ExecEnv {
        regs: w.regs.clone(),
        mem: w.mem.clone(),
        max_steps: w.max_steps,
    }
}

/// Every `Scale::Test` workload × every model: fast-forward on (with the
/// expensive per-jump differential check also on) versus fast-forward off
/// must be simulation-identical.
#[test]
fn fast_forward_is_stat_identical_across_suite_and_models() {
    let mut jumps_total = 0u64;
    let mut skipped_total = 0u64;
    for w in suite(Scale::Test, 42) {
        let env = env_of(&w);
        let compiled = compile(&w.prog, &env, &CompilerConfig::default())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
        for model in Model::ALL {
            let mut plain_cfg = MachineConfig::paper();
            plain_cfg.fast_forward = false;
            plain_cfg.ff_check = false;
            let mut ff_cfg = MachineConfig::paper();
            ff_cfg.fast_forward = true;
            ff_cfg.ff_check = true;

            let plain = Machine::new(model, &compiled, &env, plain_cfg)
                .run(compiled.profile.dyn_instrs)
                .unwrap_or_else(|e| panic!("{}/{model}: plain run failed: {e}", w.name));
            let ff = Machine::new(model, &compiled, &env, ff_cfg)
                .run(compiled.profile.dyn_instrs)
                .unwrap_or_else(|e| panic!("{}/{model}: ff run failed: {e}", w.name));

            assert_eq!(
                plain.ff_jumps, 0,
                "{}/{model}: plain run took jumps",
                w.name
            );
            assert_eq!(
                plain.cycles, ff.cycles,
                "{}/{model}: cycle count diverged under fast-forward",
                w.name
            );
            assert_eq!(
                plain.mem_checksum, ff.mem_checksum,
                "{}/{model}: memory diverged under fast-forward",
                w.name
            );
            assert!(
                plain.sim_eq(&ff),
                "{}/{model}: statistics diverged under fast-forward:\n\
                 plain: {plain:#?}\nff: {ff:#?}",
                w.name
            );
            assert!(
                ff.ff_skipped_cycles <= ff.cycles,
                "{}/{model}: skipped more cycles than were simulated",
                w.name
            );
            jumps_total += ff.ff_jumps;
            skipped_total += ff.ff_skipped_cycles;
        }
    }
    // The suite at test scale must actually exercise the jump machinery —
    // a fast-forward that never fires would make this test vacuous.
    assert!(
        jumps_total > 0,
        "no fast-forward jump fired anywhere in the suite (vacuous test)"
    );
    assert!(skipped_total >= jumps_total);
}

/// The paper's high-latency point (Figure 10) stalls far more, so jumps
/// are longer and more frequent; equivalence must hold there too.
#[test]
fn fast_forward_is_stat_identical_at_high_latency() {
    let w = &suite(Scale::Test, 7)[2]; // pointer: serial chase, stall-heavy
    let env = env_of(w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();
    for model in Model::ALL {
        let mut plain_cfg = MachineConfig::paper_with_latency(16, 160);
        plain_cfg.fast_forward = false;
        let mut ff_cfg = MachineConfig::paper_with_latency(16, 160);
        ff_cfg.fast_forward = true;
        ff_cfg.ff_check = true;
        let plain = Machine::new(model, &compiled, &env, plain_cfg)
            .run(compiled.profile.dyn_instrs)
            .unwrap();
        let ff = Machine::new(model, &compiled, &env, ff_cfg)
            .run(compiled.profile.dyn_instrs)
            .unwrap();
        assert!(
            plain.sim_eq(&ff),
            "pointer/{model} @ high latency: fast-forward diverged"
        );
    }
}
