//! Failure-injection tests for the machine driver: a mis-sliced program
//! must be *diagnosed* (deadlock watchdog, cycle budget), never silently
//! wedged.

use hidisc::{Machine, MachineConfig, Model};
use hidisc_isa::asm::assemble;
use hidisc_isa::mem::Memory;
use hidisc_slicer::profile::MissProfile;
use hidisc_slicer::{CompiledWorkload, ExecEnv};

/// Hand-builds a (deliberately broken) compiled workload.
fn bogus_workload(cs_src: &str, as_src: &str) -> CompiledWorkload {
    let original = assemble("orig", "nop\nhalt").unwrap();
    CompiledWorkload {
        original,
        cs: assemble("cs", cs_src).unwrap(),
        access: assemble("as", as_src).unwrap(),
        cmas: vec![],
        profile: MissProfile::default(),
    }
}

fn env() -> ExecEnv {
    ExecEnv {
        regs: vec![],
        mem: Memory::new(),
        max_steps: 1000,
    }
}

#[test]
fn unmatched_recv_deadlocks_with_diagnosis() {
    // CP pops an LDQ value nobody ever pushes.
    let w = bogus_workload("recv r1, LDQ\nhalt", "nop\nhalt");
    let mut cfg = MachineConfig::paper();
    cfg.deadlock_cycles = 2_000;
    let mut m = Machine::new(Model::CpAp, &w, &env(), cfg);
    let err = m.run(2).unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("no progress") || msg.contains("deadlock"),
        "{msg}"
    );
}

#[test]
fn unmatched_sdq_store_deadlocks() {
    // AP stores data from an SDQ that the CS never feeds.
    let w = bogus_workload("halt", "li r1, 0x4000\ns.d SDQ, 0(r1)\nhalt");
    let mut cfg = MachineConfig::paper();
    cfg.deadlock_cycles = 2_000;
    let mut m = Machine::new(Model::CpAp, &w, &env(), cfg);
    assert!(m.run(3).is_err());
}

#[test]
fn cycle_budget_is_enforced() {
    // An infinite loop trips max_cycles even though it keeps committing.
    let spin = "loop:\nadd r1, r1, 1\nj loop\nhalt";
    let w = bogus_workload("halt", spin);
    let mut cfg = MachineConfig::paper();
    cfg.max_cycles = 5_000;
    let mut m = Machine::new(Model::CpAp, &w, &env(), cfg);
    let err = m.run(1).unwrap_err();
    assert!(format!("{err}").contains("budget"), "{err}");
}

#[test]
fn fp_on_access_processor_is_rejected() {
    // The separator guarantees no FP compute in the AS; feeding some in by
    // hand must produce a clean configuration error, not a wedge.
    let w = bogus_workload("halt", "add.d f1, f2, f3\nhalt");
    let mut m = Machine::new(Model::CpAp, &w, &env(), MachineConfig::paper());
    let err = m.run(1).unwrap_err();
    assert!(format!("{err}").contains("fp"), "{err}");
}

#[test]
fn memory_instruction_on_cp_is_rejected() {
    let w = bogus_workload("ld r1, 0(r2)\nhalt", "halt");
    let mut m = Machine::new(Model::CpAp, &w, &env(), MachineConfig::paper());
    let err = m.run(1).unwrap_err();
    assert!(format!("{err}").contains("memory"), "{err}");
}

#[test]
fn mismatched_cq_direction_is_wrong_but_terminates_or_deadlocks() {
    // CS consumes two tokens, AS produces one: the second cbranch blocks
    // forever → watchdog.
    let mut access = assemble("as", "li r1, 1\nbne r1, r0, over\nnop\nover:\nhalt").unwrap();
    access.annot_mut(1).push_cq = true;
    let cs = assemble("cs", "cbr a\na:\ncbr b\nb:\nhalt").unwrap();
    let original = assemble("orig", "nop\nhalt").unwrap();
    let w = CompiledWorkload {
        original,
        cs,
        access,
        cmas: vec![],
        profile: MissProfile::default(),
    };
    let mut cfg = MachineConfig::paper();
    cfg.deadlock_cycles = 2_000;
    let mut m = Machine::new(Model::CpAp, &w, &env(), cfg);
    assert!(m.run(4).is_err());
}
