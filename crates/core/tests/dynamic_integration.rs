//! End-to-end tests of the dynamic extensions (the paper's Section-6
//! future work) on a real workload: correctness is unaffected and the
//! controllers actually act.

use hidisc::{run_model, DynamicConfig, MachineConfig, Model};
use hidisc_isa::asm::assemble;
use hidisc_isa::mem::Memory;
use hidisc_slicer::{compile, CompilerConfig, ExecEnv};

/// A strided miss-heavy kernel plus a second loop whose data is already
/// cache-resident (so its slice is "unnecessary" in the selective-trigger
/// sense).
fn workload() -> (hidisc_slicer::CompiledWorkload, ExecEnv) {
    workload_with(&CompilerConfig::default())
}

fn workload_with(cc: &CompilerConfig) -> (hidisc_slicer::CompiledWorkload, ExecEnv) {
    let prog = assemble(
        "dyn",
        r"
            li r1, 0x100000
            li r2, 2048
        loop1:
            ld r3, 0(r1)
            add r4, r3, 1
            sd r4, 0x100000(r1)
            add r1, r1, 64
            sub r2, r2, 1
            bne r2, r0, loop1
            ; second phase: re-walk a small, now-hot region repeatedly
            li r9, 64
        outer:
            li r1, 0x100000
            li r2, 64
        loop2:
            ld r3, 0(r1)
            add r1, r1, 8
            sub r2, r2, 1
            bne r2, r0, loop2
            sub r9, r9, 1
            bne r9, r0, outer
            halt
        ",
    )
    .unwrap();
    let env = ExecEnv {
        regs: vec![],
        mem: Memory::new(),
        max_steps: 10_000_000,
    };
    let w = compile(&prog, &env, cc).unwrap();
    (w, env)
}

fn cfg_with_dynamic() -> MachineConfig {
    let mut cfg = MachineConfig::paper();
    cfg.cmp.dynamic = DynamicConfig::all_on();
    cfg
}

#[test]
fn dynamic_machine_is_architecturally_identical() {
    let (w, env) = workload();
    let plain = run_model(Model::HiDisc, &w, &env, MachineConfig::paper()).unwrap();
    let dynamic = run_model(Model::HiDisc, &w, &env, cfg_with_dynamic()).unwrap();
    assert_eq!(plain.mem_checksum, dynamic.mem_checksum);
    // Performance in the same ballpark (the controllers must not wreck the
    // machine).
    let ratio = plain.cycles as f64 / dynamic.cycles as f64;
    assert!(
        (0.7..1.4).contains(&ratio),
        "dynamic/static cycle ratio {ratio:.3}"
    );
}

#[test]
fn adaptive_slip_takes_adaptation_steps() {
    let (w, env) = workload();
    let st = run_model(Model::HiDisc, &w, &env, cfg_with_dynamic()).unwrap();
    let cmp = st.cmp.expect("HiDISC has a CMP");
    assert!(cmp.prefetches > 0);
    assert!(
        cmp.slip_adaptations > 0,
        "the slip controller should have adapted at least once ({cmp:?})"
    );
}

#[test]
fn selective_trigger_suppresses_hot_region_slices() {
    // Lower the profiling threshold so the phase-2 loop — whose only
    // misses are its first pass over the already-touched region — still
    // gets a CMAS. At run time its prefetches almost always hit (the
    // region stays hot across the 64 outer iterations), so the filter
    // must start suppressing its forks.
    let cc = CompilerConfig {
        miss_rate_threshold: 0.001,
        min_misses: 4,
        ..Default::default()
    };
    let (w, env) = workload_with(&cc);
    assert!(
        w.cmas.len() >= 2,
        "both phases must have slices ({})",
        w.cmas.len()
    );
    let mut cfg = cfg_with_dynamic();
    cfg.cmp.dynamic.min_observations = 32;
    let st = run_model(Model::HiDisc, &w, &env, cfg).unwrap();
    let cmp = st.cmp.expect("HiDISC has a CMP");
    assert!(
        cmp.forks + cmp.suppressed_forks > 10,
        "the phase-2 trigger fires once per outer iteration ({cmp:?})"
    );
    assert!(
        cmp.suppressed_forks > 0,
        "forks of the useless slice should be suppressed ({cmp:?})"
    );
}

#[test]
fn dynamic_config_off_is_truly_off() {
    let (w, env) = workload();
    let st = run_model(Model::HiDisc, &w, &env, MachineConfig::paper()).unwrap();
    let cmp = st.cmp.expect("HiDISC has a CMP");
    assert_eq!(cmp.slip_adaptations, 0);
    assert_eq!(cmp.suppressed_forks, 0);
}
