//! # hidisc — the Hierarchical Decoupled Instruction Stream Computer
//!
//! The paper's primary contribution: a machine combining three processors,
//! one per level of the memory hierarchy, cooperating through
//! architectural FIFO queues:
//!
//! * the **Computation Processor** (CP) executes the Computation Stream;
//! * the **Access Processor** (AP) executes the Access Stream, runs ahead
//!   of the CP and feeds it through the Load Data Queue;
//! * the **Cache Management Processor** (CMP) speculatively executes Cache
//!   Miss Access Slices forked from the AP, prefetching into the caches the
//!   AP is about to touch.
//!
//! Four machine models are provided ([`Model`]), matching the paper's
//! evaluation:
//!
//! | model | processors | paper role |
//! |-------|------------|-----------|
//! | [`Model::Superscalar`] | 1 × 8-issue OoO | baseline |
//! | [`Model::CpAp`]        | CP + AP | conventional access/execute decoupling |
//! | [`Model::CpCmp`]       | superscalar + CMP | DDMT / speculative precomputation analogue |
//! | [`Model::HiDisc`]      | CP + AP + CMP | the full HiDISC |
//!
//! [`run_model`] compiles nothing itself — it takes a
//! [`hidisc_slicer::CompiledWorkload`] and an initial machine state and
//! simulates to completion, returning [`MachineStats`] with the cycle
//! count, IPC (work instructions / cycles), cache statistics and the
//! decoupling diagnostics used throughout the paper's evaluation section.

#![forbid(unsafe_code)]

pub mod cmp;
pub mod config;
pub mod dynamic;
pub mod error;
pub mod funcval;
pub mod machine;
pub mod stats;

pub use cmp::{CmpConfig, CmpEngine, CmpStats};
pub use config::{fnv1a, ConfigError, MachineConfig, MachineConfigBuilder, Model, FNV_OFFSET};
pub use dynamic::DynamicConfig;
pub use error::RunError;
pub use hidisc_ooo::Scheduler;
pub use hidisc_telemetry as telemetry;
pub use hidisc_telemetry::{Category, Telemetry, TraceConfig};
pub use machine::{run_model, Machine, MachineSnapshot, Observer, SampledStats};
pub use stats::MachineStats;
