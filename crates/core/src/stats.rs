//! Machine-level statistics: the measures reported in the paper's
//! evaluation (IPC, speed-up, cache miss rate, loss-of-decoupling).

use crate::cmp::CmpStats;
use crate::config::Model;
use hidisc_mem::MemStats;
use hidisc_ooo::queues::QueueStats;
use hidisc_ooo::CoreStats;

/// Statistics of one simulated run.
#[derive(Debug, Clone)]
pub struct MachineStats {
    /// Which model ran.
    pub model: Model,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Useful work: dynamic instructions of the *original sequential
    /// program* (identical across models for the same workload).
    pub work_instrs: u64,
    /// Per-core statistics `(name, stats)`.
    pub cores: Vec<(&'static str, CoreStats)>,
    /// Memory-system statistics.
    pub mem: MemStats,
    /// CMP statistics (models with a CMP).
    pub cmp: Option<CmpStats>,
    /// Queue statistics in [`hidisc_isa::Queue::ALL`] order.
    pub queues: [QueueStats; 5],
    /// Checksum of the final data memory (for cross-model validation).
    pub mem_checksum: u64,
    /// Host wall-clock time spent inside `run`/`run_observed`, in
    /// nanoseconds (simulator performance, not a simulated quantity).
    pub host_wall_ns: u64,
    /// Fast-forward jumps taken (0 when fast-forward is disabled).
    pub ff_jumps: u64,
    /// Simulated cycles skipped by fast-forward jumps (these cycles are
    /// fully accounted in `cycles` and every statistic; they were just not
    /// individually stepped).
    pub ff_skipped_cycles: u64,
}

impl MachineStats {
    /// A stats record carrying only the measures the figure reports read
    /// (cycles, useful work, L1 demand behaviour), with every other field
    /// empty. Rebuilds report inputs from serialised points — a cached
    /// `/v1/run` result or a sweep point — without a live simulation, so
    /// a figure assembled from minimal stats renders byte-identically to
    /// one assembled from full runs.
    pub fn minimal(
        model: Model,
        cycles: u64,
        work_instrs: u64,
        l1_demand_accesses: u64,
        l1_demand_misses: u64,
    ) -> MachineStats {
        let mut mem = MemStats::default();
        mem.l1.demand_accesses = l1_demand_accesses;
        mem.l1.demand_misses = l1_demand_misses;
        MachineStats {
            model,
            cycles,
            work_instrs,
            cores: Vec::new(),
            mem,
            cmp: None,
            queues: [QueueStats::default(); 5],
            mem_checksum: 0,
            host_wall_ns: 0,
            ff_jumps: 0,
            ff_skipped_cycles: 0,
        }
    }

    /// Instructions per cycle, in *useful work* terms: decoupled models
    /// are not credited for duplicated control or communication
    /// instructions.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.work_instrs as f64 / self.cycles as f64
        }
    }

    /// Speed-up of this run relative to a baseline run of the same
    /// workload.
    pub fn speedup_over(&self, baseline: &MachineStats) -> f64 {
        assert_eq!(
            self.work_instrs, baseline.work_instrs,
            "speed-up requires identical workloads"
        );
        baseline.cycles as f64 / self.cycles as f64
    }

    /// L1 demand miss rate of this run.
    pub fn l1_miss_rate(&self) -> f64 {
        self.mem.l1.demand_miss_rate()
    }

    /// Relative L1 demand miss rate vs a baseline (the quantity plotted in
    /// Figure 9; < 1.0 means misses were eliminated).
    pub fn miss_rate_ratio(&self, baseline: &MachineStats) -> f64 {
        let b = baseline.l1_miss_rate();
        if b == 0.0 {
            1.0
        } else {
            self.l1_miss_rate() / b
        }
    }

    /// Total loss-of-decoupling events across cores.
    pub fn lod_events(&self) -> u64 {
        self.cores.iter().map(|(_, s)| s.lod_events).sum()
    }

    /// Total committed instructions across cores (includes duplicated
    /// control and queue-communication overhead).
    pub fn total_committed(&self) -> u64 {
        self.cores.iter().map(|(_, s)| s.committed).sum()
    }

    /// Communication/duplication overhead factor: committed instructions
    /// across all processors divided by useful work.
    pub fn overhead_factor(&self) -> f64 {
        if self.work_instrs == 0 {
            0.0
        } else {
            self.total_committed() as f64 / self.work_instrs as f64
        }
    }

    /// Simulator throughput in millions of simulated instructions
    /// (committed, across all cores) per host wall-clock second.
    pub fn msips(&self) -> f64 {
        if self.host_wall_ns == 0 {
            0.0
        } else {
            self.total_committed() as f64 * 1e3 / self.host_wall_ns as f64
        }
    }

    /// Host nanoseconds spent per simulated cycle (simulation speed; with
    /// fast-forward on, skipped cycles make this drop on stall-heavy runs).
    pub fn host_ns_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.host_wall_ns as f64 / self.cycles as f64
        }
    }

    /// True when two runs produced identical *simulated* results: every
    /// architectural statistic, cycle count and memory checksum. Host-side
    /// measurements (`host_wall_ns`, `ff_jumps`, `ff_skipped_cycles`) are
    /// excluded — they describe how the simulation was executed, not what
    /// it computed. This is the equivalence the fast-forward path
    /// guarantees against the per-cycle loop.
    pub fn sim_eq(&self, other: &MachineStats) -> bool {
        let MachineStats {
            model,
            cycles,
            work_instrs,
            cores,
            mem,
            cmp,
            queues,
            mem_checksum,
            host_wall_ns: _,
            ff_jumps: _,
            ff_skipped_cycles: _,
        } = self;
        *model == other.model
            && *cycles == other.cycles
            && *work_instrs == other.work_instrs
            && *cores == other.cores
            && *mem == other.mem
            && *cmp == other.cmp
            && *queues == other.queues
            && *mem_checksum == other.mem_checksum
    }

    /// Canonical JSON serialisation of exactly the fields
    /// [`MachineStats::sim_eq`] compares. Host-side measurements
    /// (`host_wall_ns`, `ff_jumps`, `ff_skipped_cycles`) are excluded,
    /// so two runs of the same configuration — direct, cached, traced,
    /// fast-forwarded or not — serialise to byte-identical documents.
    ///
    /// Structs are destructured exhaustively: adding a statistic is a
    /// compile error here until the encoding (and its consumers) are
    /// updated.
    pub fn to_json(&self) -> String {
        fn core_json(out: &mut String, s: &CoreStats) {
            let CoreStats {
                cycles,
                committed,
                committed_mem,
                dispatched,
                dispatch_stall_q,
                commit_stall_q,
                lod_events,
                ruu_full_cycles,
                lsq_full_cycles,
                mispredicts,
                cbranch_redirects,
                mem_dep_stalls,
                forwarded_loads,
                mshr_retries,
                dropped_prefetches,
                triggers_fired,
            } = s;
            out.push_str(&format!(
                "{{\"cycles\":{cycles},\"committed\":{committed},\
                 \"committedMem\":{committed_mem},\"dispatched\":{dispatched},\
                 \"dispatchStallQ\":{},\"commitStallQ\":{},\
                 \"lodEvents\":{lod_events},\"ruuFullCycles\":{ruu_full_cycles},\
                 \"lsqFullCycles\":{lsq_full_cycles},\"mispredicts\":{mispredicts},\
                 \"cbranchRedirects\":{cbranch_redirects},\
                 \"memDepStalls\":{mem_dep_stalls},\"forwardedLoads\":{forwarded_loads},\
                 \"mshrRetries\":{mshr_retries},\"droppedPrefetches\":{dropped_prefetches},\
                 \"triggersFired\":{triggers_fired}}}",
                u64_array(dispatch_stall_q),
                u64_array(commit_stall_q),
            ));
        }
        fn u64_array(a: &[u64]) -> String {
            let items: Vec<String> = a.iter().map(u64::to_string).collect();
            format!("[{}]", items.join(","))
        }
        fn cache_json(s: &hidisc_mem::CacheStats) -> String {
            let hidisc_mem::CacheStats {
                demand_accesses,
                demand_misses,
                prefetch_accesses,
                prefetch_misses,
                useful_prefetch_hits,
                late_prefetch_hits,
                writebacks,
            } = s;
            format!(
                "{{\"demandAccesses\":{demand_accesses},\"demandMisses\":{demand_misses},\
                 \"prefetchAccesses\":{prefetch_accesses},\"prefetchMisses\":{prefetch_misses},\
                 \"usefulPrefetchHits\":{useful_prefetch_hits},\
                 \"latePrefetchHits\":{late_prefetch_hits},\"writebacks\":{writebacks}}}"
            )
        }

        let MachineStats {
            model,
            cycles,
            work_instrs,
            cores,
            mem,
            cmp,
            queues,
            mem_checksum,
            host_wall_ns: _,
            ff_jumps: _,
            ff_skipped_cycles: _,
        } = self;

        let mut out = String::with_capacity(2048);
        out.push_str(&format!(
            "{{\"model\":\"{}\",\"cycles\":{cycles},\"workInstrs\":{work_instrs},\"cores\":[",
            model.name()
        ));
        for (i, (name, s)) in cores.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"name\":\"{name}\",\"stats\":"));
            core_json(&mut out, s);
            out.push('}');
        }
        out.push_str("],\"mem\":{");
        let MemStats {
            l1,
            l2,
            mem_accesses,
            mshr_rejects,
            mshr_merges,
        } = mem;
        out.push_str(&format!(
            "\"l1\":{},\"l2\":{},\"memAccesses\":{mem_accesses},\
             \"mshrRejects\":{mshr_rejects},\"mshrMerges\":{mshr_merges}}}",
            cache_json(l1),
            cache_json(l2)
        ));
        out.push_str(",\"cmp\":");
        match cmp {
            None => out.push_str("null"),
            Some(c) => {
                let CmpStats {
                    forks,
                    dropped_forks,
                    instrs,
                    prefetches,
                    dropped_prefetches,
                    scq_block_cycles,
                    completed_threads,
                    suppressed_forks,
                    slip_adaptations,
                } = c;
                out.push_str(&format!(
                    "{{\"forks\":{forks},\"droppedForks\":{dropped_forks},\
                     \"instrs\":{instrs},\"prefetches\":{prefetches},\
                     \"droppedPrefetches\":{dropped_prefetches},\
                     \"scqBlockCycles\":{scq_block_cycles},\
                     \"completedThreads\":{completed_threads},\
                     \"suppressedForks\":{suppressed_forks},\
                     \"slipAdaptations\":{slip_adaptations}}}"
                ));
            }
        }
        out.push_str(",\"queues\":[");
        for (i, q) in queues.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let QueueStats {
                pushes,
                pops,
                full_rejects,
                empty_rejects,
                max_occupancy,
            } = q;
            out.push_str(&format!(
                "{{\"pushes\":{pushes},\"pops\":{pops},\"fullRejects\":{full_rejects},\
                 \"emptyRejects\":{empty_rejects},\"maxOccupancy\":{max_occupancy}}}"
            ));
        }
        out.push_str(&format!("],\"memChecksum\":{mem_checksum}}}"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(model: Model, cycles: u64, work: u64) -> MachineStats {
        MachineStats {
            model,
            cycles,
            work_instrs: work,
            cores: vec![],
            mem: MemStats::default(),
            cmp: None,
            queues: Default::default(),
            mem_checksum: 0,
            host_wall_ns: 0,
            ff_jumps: 0,
            ff_skipped_cycles: 0,
        }
    }

    #[test]
    fn ipc_and_speedup() {
        let base = stats(Model::Superscalar, 1000, 2000);
        let fast = stats(Model::HiDisc, 800, 2000);
        assert!((base.ipc() - 2.0).abs() < 1e-12);
        assert!((fast.speedup_over(&base) - 1.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn speedup_rejects_mismatched_work() {
        let a = stats(Model::Superscalar, 1000, 2000);
        let b = stats(Model::HiDisc, 800, 2001);
        let _ = b.speedup_over(&a);
    }

    #[test]
    fn miss_ratio_guards_zero_baseline() {
        let a = stats(Model::Superscalar, 1, 1);
        let b = stats(Model::HiDisc, 1, 1);
        assert_eq!(b.miss_rate_ratio(&a), 1.0);
    }
}
