//! Dynamic CMAS control — the paper's future-work extensions.
//!
//! Section 6 of the paper proposes two runtime refinements, both
//! implemented here as optional features of the CMP engine:
//!
//! 1. **Runtime control of the prefetching distance** ([`SlipController`]):
//!    instead of a fixed Slip Control Queue depth, the effective run-ahead
//!    bound adapts to observed prefetch timeliness — grow it while
//!    prefetches arrive late, shrink it while they risk polluting the
//!    cache long before use.
//! 2. **Selective CMAS triggering** ([`SliceFilter`]): "not every probable
//!    cache miss instruction would be triggered as CMAS. Depending on the
//!    previous prefetching history, we can choose only the necessary
//!    prefetching at run time." Slices whose prefetches almost always hit
//!    in the L1 (the data was already resident) are suppressed, with
//!    periodic probation so phase changes are noticed.

use hidisc_isa::wire::{Dec, Enc, WireError, WireResult};
use hidisc_mem::MemStats;

/// Configuration for the dynamic extensions (all off by default — the
/// paper's headline experiments use the static machine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicConfig {
    /// Enable runtime prefetch-distance control.
    pub adaptive_slip: bool,
    /// Lower bound of the adaptive slip window (loop iterations).
    pub min_slip: usize,
    /// Upper bound of the adaptive slip window (clamped to the SCQ
    /// capacity at runtime).
    pub max_slip: usize,
    /// Prefetches between adaptation steps.
    pub sample_period: u64,
    /// Fraction of late prefetches above which the distance grows.
    pub late_threshold: f64,
    /// Enable selective triggering.
    pub selective_trigger: bool,
    /// Minimum prefetch-miss fraction for a slice to stay enabled (below
    /// this, its prefetches were already cached — the slice is
    /// unnecessary).
    pub usefulness_floor: f64,
    /// Prefetches observed per slice before it can be judged.
    pub min_observations: u64,
    /// Every `probation_period`-th suppressed fork runs anyway, so a
    /// suppressed slice can rehabilitate after a phase change.
    pub probation_period: u32,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            adaptive_slip: false,
            min_slip: 4,
            max_slip: 64,
            sample_period: 256,
            late_threshold: 0.25,
            selective_trigger: false,
            usefulness_floor: 0.05,
            min_observations: 128,
            probation_period: 16,
        }
    }
}

impl DynamicConfig {
    /// Both extensions on, with default tuning.
    pub fn all_on() -> DynamicConfig {
        DynamicConfig {
            adaptive_slip: true,
            selective_trigger: true,
            ..DynamicConfig::default()
        }
    }
}

/// Runtime prefetch-distance controller.
///
/// Observes the memory system's late-vs-useful prefetch counters and
/// adjusts the effective slip bound multiplicatively: late prefetches ⇒
/// the CMAS is not far enough ahead ⇒ double the distance; almost no late
/// prefetches ⇒ the distance can shrink, reducing occupancy and pollution.
#[derive(Debug, Clone)]
pub struct SlipController {
    cfg: DynamicConfig,
    limit: usize,
    last_useful: u64,
    last_late: u64,
    seen_prefetches: u64,
    next_sample_at: u64,
    /// Number of adaptation steps taken (for reports/tests).
    pub adaptations: u64,
}

impl SlipController {
    /// Creates a controller starting in the middle of its window.
    pub fn new(cfg: DynamicConfig) -> SlipController {
        let start = if cfg.adaptive_slip {
            usize::midpoint(cfg.min_slip, cfg.max_slip)
        } else {
            usize::MAX
        };
        SlipController {
            cfg,
            limit: start,
            last_useful: 0,
            last_late: 0,
            seen_prefetches: 0,
            next_sample_at: cfg.sample_period,
            adaptations: 0,
        }
    }

    /// Current slip bound in SCQ tokens. `usize::MAX` when the controller
    /// is disabled (the SCQ capacity alone bounds run-ahead).
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Notes one issued prefetch; adapts every `sample_period` prefetches
    /// using the memory system's counters.
    pub fn on_prefetch(&mut self, mem: &MemStats) {
        if !self.cfg.adaptive_slip {
            return;
        }
        self.seen_prefetches += 1;
        if self.seen_prefetches < self.next_sample_at {
            return;
        }
        self.next_sample_at = self.seen_prefetches + self.cfg.sample_period;

        let useful = mem.l1.useful_prefetch_hits;
        let late = mem.l1.late_prefetch_hits;
        let d_useful = useful.saturating_sub(self.last_useful);
        let d_late = late.saturating_sub(self.last_late);
        self.last_useful = useful;
        self.last_late = late;

        let total = d_useful.max(1);
        let late_frac = d_late as f64 / total as f64;
        let old = self.limit;
        if late_frac > self.cfg.late_threshold {
            self.limit = (self.limit * 2).min(self.cfg.max_slip);
        } else if late_frac < self.cfg.late_threshold / 4.0 {
            self.limit = (self.limit / 2).max(self.cfg.min_slip);
        }
        if self.limit != old {
            self.adaptations += 1;
        }
    }

    /// Serialises the controller's dynamic state (the config is pinned by
    /// the checkpoint header).
    pub fn save_state(&self, e: &mut Enc) {
        e.usize(self.limit);
        e.u64(self.last_useful);
        e.u64(self.last_late);
        e.u64(self.seen_prefetches);
        e.u64(self.next_sample_at);
        e.u64(self.adaptations);
    }

    /// Restores the state saved by [`SlipController::save_state`].
    pub fn load_state(&mut self, d: &mut Dec) -> WireResult<()> {
        self.limit = d.usize()?;
        self.last_useful = d.u64()?;
        self.last_late = d.u64()?;
        self.seen_prefetches = d.u64()?;
        self.next_sample_at = d.u64()?;
        self.adaptations = d.u64()?;
        Ok(())
    }
}

/// Per-slice trigger filter (selective CMAS execution).
#[derive(Debug, Clone, Default)]
struct SliceHistory {
    issued: u64,
    missed: u64,
    suppressed: bool,
    suppressed_forks: u32,
}

/// Decides, from prefetching history, which CMAS slices are worth forking.
#[derive(Debug, Clone)]
pub struct SliceFilter {
    cfg: DynamicConfig,
    slices: Vec<SliceHistory>,
    /// Forks suppressed so far (for reports/tests).
    pub suppressed_forks: u64,
}

impl SliceFilter {
    /// Creates a filter for `n` slices.
    pub fn new(cfg: DynamicConfig, n: usize) -> SliceFilter {
        SliceFilter {
            cfg,
            slices: vec![SliceHistory::default(); n],
            suppressed_forks: 0,
        }
    }

    /// Records the outcome of one prefetch issued by slice `id`
    /// (`did_work` = the prefetch actually missed and fetched something).
    pub fn record(&mut self, id: usize, did_work: bool) {
        if !self.cfg.selective_trigger || id >= self.slices.len() {
            return;
        }
        let s = &mut self.slices[id];
        s.issued += 1;
        if did_work {
            s.missed += 1;
        }
        if s.issued >= self.cfg.min_observations {
            let frac = s.missed as f64 / s.issued as f64;
            s.suppressed = frac < self.cfg.usefulness_floor;
            // Exponential forgetting so history does not dominate forever.
            s.issued /= 2;
            s.missed /= 2;
        }
    }

    /// Should a fork of slice `id` run? Suppressed slices let every
    /// `probation_period`-th fork through to keep sampling.
    pub fn allow(&mut self, id: usize) -> bool {
        if !self.cfg.selective_trigger || id >= self.slices.len() {
            return true;
        }
        let s = &mut self.slices[id];
        if !s.suppressed {
            return true;
        }
        s.suppressed_forks += 1;
        if s.suppressed_forks >= self.cfg.probation_period {
            s.suppressed_forks = 0;
            return true; // probation run
        }
        self.suppressed_forks += 1;
        false
    }

    /// True when slice `id` is currently suppressed.
    pub fn is_suppressed(&self, id: usize) -> bool {
        self.slices.get(id).map(|s| s.suppressed).unwrap_or(false)
    }

    /// Serialises the per-slice history (slice count comes from the
    /// workload, which the checkpoint header pins).
    pub fn save_state(&self, e: &mut Enc) {
        e.usize(self.slices.len());
        for s in &self.slices {
            e.u64(s.issued);
            e.u64(s.missed);
            e.bool(s.suppressed);
            e.u32(s.suppressed_forks);
        }
        e.u64(self.suppressed_forks);
    }

    /// Restores the state saved by [`SliceFilter::save_state`]; the
    /// receiver must be built for the same number of slices.
    pub fn load_state(&mut self, d: &mut Dec) -> WireResult<()> {
        let n = d.usize()?;
        if n != self.slices.len() {
            return Err(WireError {
                pos: 0,
                what: "slice filter size mismatch",
            });
        }
        for s in &mut self.slices {
            s.issued = d.u64()?;
            s.missed = d.u64()?;
            s.suppressed = d.bool()?;
            s.suppressed_forks = d.u32()?;
        }
        self.suppressed_forks = d.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_mem::CacheStats;

    fn mem(useful: u64, late: u64) -> MemStats {
        MemStats {
            l1: CacheStats {
                useful_prefetch_hits: useful,
                late_prefetch_hits: late,
                ..CacheStats::default()
            },
            ..MemStats::default()
        }
    }

    fn cfg() -> DynamicConfig {
        DynamicConfig {
            adaptive_slip: true,
            sample_period: 4,
            ..DynamicConfig::default()
        }
    }

    #[test]
    fn disabled_controller_never_limits() {
        let c = SlipController::new(DynamicConfig::default());
        assert_eq!(c.limit(), usize::MAX);
    }

    #[test]
    fn grows_on_late_prefetches() {
        let mut c = SlipController::new(cfg());
        let start = c.limit();
        // All prefetch hits are late.
        for i in 1..=8 {
            c.on_prefetch(&mem(i, i));
        }
        assert!(c.limit() > start, "{} should grow past {start}", c.limit());
        assert!(c.adaptations >= 1);
    }

    #[test]
    fn shrinks_when_comfortably_early() {
        let mut c = SlipController::new(cfg());
        let start = c.limit();
        for i in 1..=8 {
            c.on_prefetch(&mem(i * 100, 0));
        }
        assert!(c.limit() < start);
        assert!(c.limit() >= cfg().min_slip);
    }

    #[test]
    fn respects_bounds() {
        let mut c = SlipController::new(cfg());
        for i in 1..=100 {
            c.on_prefetch(&mem(i, i)); // always late → keeps doubling
        }
        assert!(c.limit() <= cfg().max_slip);
    }

    #[test]
    fn filter_suppresses_useless_slice() {
        let dc = DynamicConfig {
            selective_trigger: true,
            min_observations: 8,
            usefulness_floor: 0.25,
            ..DynamicConfig::default()
        };
        let mut f = SliceFilter::new(dc, 2);
        // Slice 0: all prefetches already cached (did_work = false).
        for _ in 0..8 {
            f.record(0, false);
        }
        assert!(f.is_suppressed(0));
        // Slice 1: always useful.
        for _ in 0..8 {
            f.record(1, true);
        }
        assert!(!f.is_suppressed(1));
        assert!(f.allow(1));
    }

    #[test]
    fn probation_lets_samples_through() {
        let dc = DynamicConfig {
            selective_trigger: true,
            min_observations: 4,
            usefulness_floor: 0.5,
            probation_period: 3,
            ..DynamicConfig::default()
        };
        let mut f = SliceFilter::new(dc, 1);
        for _ in 0..4 {
            f.record(0, false);
        }
        assert!(f.is_suppressed(0));
        let outcomes: Vec<bool> = (0..6).map(|_| f.allow(0)).collect();
        assert!(
            outcomes.iter().any(|&a| a),
            "probation must admit some forks"
        );
        assert!(
            outcomes.iter().any(|&a| !a),
            "suppression must reject some forks"
        );
    }

    #[test]
    fn rehabilitation_after_phase_change() {
        let dc = DynamicConfig {
            selective_trigger: true,
            min_observations: 4,
            usefulness_floor: 0.5,
            probation_period: 1, // every fork is a probation run
            ..DynamicConfig::default()
        };
        let mut f = SliceFilter::new(dc, 1);
        for _ in 0..4 {
            f.record(0, false);
        }
        assert!(f.is_suppressed(0));
        // Phase change: prefetches start doing work again.
        for _ in 0..8 {
            f.record(0, true);
        }
        assert!(!f.is_suppressed(0));
    }

    #[test]
    fn disabled_filter_allows_everything() {
        let mut f = SliceFilter::new(DynamicConfig::default(), 1);
        for _ in 0..100 {
            f.record(0, false);
        }
        assert!(!f.is_suppressed(0));
        assert!(f.allow(0));
    }
}
