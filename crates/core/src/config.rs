//! Machine-level configuration: the four models of the paper and the
//! Table-1 parameter presets.

use crate::cmp::CmpConfig;
use hidisc_mem::MemConfig;
use hidisc_ooo::{CoreConfig, QueueConfig};

/// The four architecture models evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// The 8-issue baseline superscalar.
    Superscalar,
    /// Conventional access/execute decoupling: CP + AP.
    CpAp,
    /// Cache prefetching only: the superscalar core plus the CMP
    /// (the paper notes this model is "quite close to DDMT and Speculative
    /// Precomputation").
    CpCmp,
    /// The complete HiDISC: CP + AP + CMP.
    HiDisc,
}

impl Model {
    /// All four models, in the paper's presentation order.
    pub const ALL: [Model; 4] = [Model::Superscalar, Model::CpAp, Model::CpCmp, Model::HiDisc];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Model::Superscalar => "Superscalar",
            Model::CpAp => "CP+AP",
            Model::CpCmp => "CP+CMP",
            Model::HiDisc => "HiDISC",
        }
    }

    /// True when the model includes the Cache Management Processor.
    pub fn has_cmp(self) -> bool {
        matches!(self, Model::CpCmp | Model::HiDisc)
    }

    /// True when the model runs the separated CS/AS streams (vs the
    /// original single stream).
    pub fn is_decoupled(self) -> bool {
        matches!(self, Model::CpAp | Model::HiDisc)
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full configuration of one simulated machine.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Baseline / merged-stream core (Superscalar and CP+CMP models).
    pub superscalar: CoreConfig,
    /// Computation Processor core.
    pub cp: CoreConfig,
    /// Access Processor core.
    pub ap: CoreConfig,
    /// Cache Management Processor engine.
    pub cmp: CmpConfig,
    /// Memory hierarchy.
    pub mem: MemConfig,
    /// Architectural queue capacities.
    pub queues: QueueConfig,
    /// Abort if no instruction commits for this many cycles (deadlock or
    /// livelock in a mis-sliced program).
    pub deadlock_cycles: u64,
    /// Hard cycle budget.
    pub max_cycles: u64,
    /// Event-driven idle-cycle fast-forward: when a full machine cycle
    /// makes zero architectural progress twice in a row, jump the clock to
    /// the next pending event instead of re-simulating identical stall
    /// cycles. Statistics and cycle counts are exactly those of the
    /// per-cycle loop (see DESIGN.md, "Idle-cycle fast-forward").
    pub fast_forward: bool,
    /// Differential checking: every fast-forward jump also steps a cloned
    /// machine cycle by cycle and asserts that the two end up bit-identical
    /// (state, statistics, clock). Slow — for tests and debugging only.
    pub ff_check: bool,
}

impl MachineConfig {
    /// The Table-1 configuration.
    pub fn paper() -> MachineConfig {
        MachineConfig {
            superscalar: CoreConfig::paper_superscalar(),
            cp: CoreConfig::paper_cp(),
            ap: CoreConfig::paper_ap(),
            cmp: CmpConfig::default(),
            mem: MemConfig::paper(),
            queues: QueueConfig::paper(),
            deadlock_cycles: 100_000,
            max_cycles: 2_000_000_000,
            fast_forward: true,
            ff_check: false,
        }
    }

    /// Table-1 configuration with the Figure-10 latency override.
    pub fn paper_with_latency(l2: u32, mem: u32) -> MachineConfig {
        let mut c = MachineConfig::paper();
        c.mem = MemConfig::paper_with_latency(l2, mem);
        c
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_properties() {
        assert!(!Model::Superscalar.has_cmp());
        assert!(!Model::CpAp.has_cmp());
        assert!(Model::CpCmp.has_cmp());
        assert!(Model::HiDisc.has_cmp());
        assert!(Model::CpAp.is_decoupled());
        assert!(Model::HiDisc.is_decoupled());
        assert!(!Model::CpCmp.is_decoupled());
        assert_eq!(Model::ALL.len(), 4);
    }

    #[test]
    fn paper_preset_sane() {
        let c = MachineConfig::paper();
        assert_eq!(c.mem.mem_latency, 120);
        assert_eq!(c.cp.ruu_size, 16);
        assert_eq!(c.ap.ruu_size, 64);
        let f10 = MachineConfig::paper_with_latency(16, 160);
        assert_eq!(f10.mem.l2.latency, 16);
    }
}
