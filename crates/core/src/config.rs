//! Machine-level configuration: the four models of the paper and the
//! Table-1 parameter presets.

use crate::cmp::CmpConfig;
use hidisc_mem::{CacheConfig, MemConfig};
use hidisc_ooo::{CoreConfig, QueueConfig, Scheduler};
use hidisc_telemetry::TraceConfig;

/// One FNV-1a 64-bit step over `bytes`, continuing from `state` (seed
/// with [`FNV_OFFSET`]). Exposed so callers can extend a configuration's
/// content-address with more key material (workload name, seed, model).
pub fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The FNV-1a 64-bit offset basis (initial `state` for [`fnv1a`]).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The four architecture models evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// The 8-issue baseline superscalar.
    Superscalar,
    /// Conventional access/execute decoupling: CP + AP.
    CpAp,
    /// Cache prefetching only: the superscalar core plus the CMP
    /// (the paper notes this model is "quite close to DDMT and Speculative
    /// Precomputation").
    CpCmp,
    /// The complete HiDISC: CP + AP + CMP.
    HiDisc,
}

impl Model {
    /// All four models, in the paper's presentation order.
    pub const ALL: [Model; 4] = [Model::Superscalar, Model::CpAp, Model::CpCmp, Model::HiDisc];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Model::Superscalar => "Superscalar",
            Model::CpAp => "CP+AP",
            Model::CpCmp => "CP+CMP",
            Model::HiDisc => "HiDISC",
        }
    }

    /// True when the model includes the Cache Management Processor.
    pub fn has_cmp(self) -> bool {
        matches!(self, Model::CpCmp | Model::HiDisc)
    }

    /// True when the model runs the separated CS/AS streams (vs the
    /// original single stream).
    pub fn is_decoupled(self) -> bool {
        matches!(self, Model::CpAp | Model::HiDisc)
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full configuration of one simulated machine.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Baseline / merged-stream core (Superscalar and CP+CMP models).
    pub superscalar: CoreConfig,
    /// Computation Processor core.
    pub cp: CoreConfig,
    /// Access Processor core.
    pub ap: CoreConfig,
    /// Cache Management Processor engine.
    pub cmp: CmpConfig,
    /// Memory hierarchy.
    pub mem: MemConfig,
    /// Architectural queue capacities.
    pub queues: QueueConfig,
    /// Abort if no instruction commits for this many cycles (deadlock or
    /// livelock in a mis-sliced program).
    pub deadlock_cycles: u64,
    /// Hard cycle budget.
    pub max_cycles: u64,
    /// Event-driven idle-cycle fast-forward: when a full machine cycle
    /// makes zero architectural progress twice in a row, jump the clock to
    /// the next pending event instead of re-simulating identical stall
    /// cycles. Statistics and cycle counts are exactly those of the
    /// per-cycle loop (see DESIGN.md, "Idle-cycle fast-forward").
    pub fast_forward: bool,
    /// Differential checking: every fast-forward jump also steps a cloned
    /// machine cycle by cycle and asserts that the two end up bit-identical
    /// (state, statistics, clock). Slow — for tests and debugging only.
    pub ff_check: bool,
    /// Telemetry: which event categories to record and the interval-metrics
    /// sampling period. [`TraceConfig::OFF`] (the default) makes every
    /// emission site a single untaken branch.
    pub trace: TraceConfig,
}

/// A machine configuration rejected by [`MachineConfigBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A structural parameter that must be at least 1 is zero (cache sets
    /// or ways, pipeline widths, window sizes, queue capacities, ...).
    Zero {
        /// Dotted path of the offending field, e.g. `"queues.cq"`.
        what: &'static str,
    },
    /// A geometry parameter that the address math requires to be a power
    /// of two (cache sets, block sizes, predictor entries) is not.
    NotPowerOfTwo {
        /// Dotted path of the offending field, e.g. `"mem.l1.block_bytes"`.
        what: &'static str,
        /// The rejected value.
        value: u64,
    },
}

impl ConfigError {
    /// Stable diagnostic code, in the same style as the verifier's
    /// `QB001`-family codes; carried as the `code` of hidisc-serve's
    /// structured error envelope.
    pub fn code(&self) -> &'static str {
        match self {
            ConfigError::Zero { .. } => "CFG001",
            ConfigError::NotPowerOfTwo { .. } => "CFG002",
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Zero { what } => {
                write!(f, "invalid machine config: {what} must be at least 1")
            }
            ConfigError::NotPowerOfTwo { what, value } => {
                write!(
                    f,
                    "invalid machine config: {what} must be a power of two (got {value})"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`MachineConfig`], obtained from
/// [`MachineConfig::builder`]. Starts from the Table-1 paper preset; every
/// setter overrides one piece, and [`build`](MachineConfigBuilder::build)
/// checks the result instead of panicking deep inside a construction.
#[derive(Debug, Clone)]
pub struct MachineConfigBuilder {
    cfg: MachineConfig,
}

impl MachineConfigBuilder {
    /// Baseline / merged-stream core configuration.
    pub fn superscalar(mut self, c: CoreConfig) -> Self {
        self.cfg.superscalar = c;
        self
    }

    /// Computation Processor core configuration.
    pub fn cp(mut self, c: CoreConfig) -> Self {
        self.cfg.cp = c;
        self
    }

    /// Access Processor core configuration.
    pub fn ap(mut self, c: CoreConfig) -> Self {
        self.cfg.ap = c;
        self
    }

    /// Cache Management Processor configuration.
    pub fn cmp(mut self, c: CmpConfig) -> Self {
        self.cfg.cmp = c;
        self
    }

    /// Memory-hierarchy configuration.
    pub fn mem(mut self, m: MemConfig) -> Self {
        self.cfg.mem = m;
        self
    }

    /// The Figure-10 latency override: `(l2_latency, mem_latency)`.
    pub fn latency(mut self, l2: u32, mem: u32) -> Self {
        self.cfg.mem = MemConfig::paper_with_latency(l2, mem);
        self
    }

    /// Architectural queue capacities.
    pub fn queues(mut self, q: QueueConfig) -> Self {
        self.cfg.queues = q;
        self
    }

    /// Issue-stage scheduler for every core of the machine.
    pub fn scheduler(mut self, s: Scheduler) -> Self {
        self.cfg.superscalar.scheduler = s;
        self.cfg.cp.scheduler = s;
        self.cfg.ap.scheduler = s;
        self
    }

    /// Progress-watchdog threshold in commit-free cycles.
    pub fn deadlock_cycles(mut self, n: u64) -> Self {
        self.cfg.deadlock_cycles = n;
        self
    }

    /// Hard cycle budget.
    pub fn max_cycles(mut self, n: u64) -> Self {
        self.cfg.max_cycles = n;
        self
    }

    /// Enables or disables idle-cycle fast-forward.
    pub fn fast_forward(mut self, on: bool) -> Self {
        self.cfg.fast_forward = on;
        self
    }

    /// Enables the differential fast-forward check (slow; tests only).
    pub fn ff_check(mut self, on: bool) -> Self {
        self.cfg.ff_check = on;
        self
    }

    /// Telemetry configuration (event-category mask + metrics interval).
    pub fn trace(mut self, t: TraceConfig) -> Self {
        self.cfg.trace = t;
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<MachineConfig, ConfigError> {
        fn nonzero(v: u64, what: &'static str) -> Result<(), ConfigError> {
            if v == 0 {
                return Err(ConfigError::Zero { what });
            }
            Ok(())
        }
        fn pow2(v: u64, what: &'static str) -> Result<(), ConfigError> {
            nonzero(v, what)?;
            if !v.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo { what, value: v });
            }
            Ok(())
        }
        fn cache(
            c: &CacheConfig,
            sets: &'static str,
            ways: &'static str,
            block: &'static str,
        ) -> Result<(), ConfigError> {
            pow2(c.sets as u64, sets)?;
            nonzero(c.ways as u64, ways)?;
            pow2(c.block_bytes as u64, block)
        }
        fn core(
            c: &CoreConfig,
            widths: [&'static str; 4],
            ruu: &'static str,
            pred: &'static str,
        ) -> Result<(), ConfigError> {
            nonzero(c.fetch_width as u64, widths[0])?;
            nonzero(c.dispatch_width as u64, widths[1])?;
            nonzero(c.issue_width as u64, widths[2])?;
            nonzero(c.commit_width as u64, widths[3])?;
            nonzero(c.ruu_size as u64, ruu)?;
            pow2(c.predictor_entries as u64, pred)
        }

        let c = &self.cfg;
        cache(
            &c.mem.l1,
            "mem.l1.sets",
            "mem.l1.ways",
            "mem.l1.block_bytes",
        )?;
        cache(
            &c.mem.l2,
            "mem.l2.sets",
            "mem.l2.ways",
            "mem.l2.block_bytes",
        )?;
        nonzero(c.mem.mshrs as u64, "mem.mshrs")?;
        core(
            &c.superscalar,
            [
                "superscalar.fetch_width",
                "superscalar.dispatch_width",
                "superscalar.issue_width",
                "superscalar.commit_width",
            ],
            "superscalar.ruu_size",
            "superscalar.predictor_entries",
        )?;
        core(
            &c.cp,
            [
                "cp.fetch_width",
                "cp.dispatch_width",
                "cp.issue_width",
                "cp.commit_width",
            ],
            "cp.ruu_size",
            "cp.predictor_entries",
        )?;
        core(
            &c.ap,
            [
                "ap.fetch_width",
                "ap.dispatch_width",
                "ap.issue_width",
                "ap.commit_width",
            ],
            "ap.ruu_size",
            "ap.predictor_entries",
        )?;
        nonzero(c.queues.ldq as u64, "queues.ldq")?;
        nonzero(c.queues.sdq as u64, "queues.sdq")?;
        nonzero(c.queues.cdq as u64, "queues.cdq")?;
        nonzero(c.queues.cq as u64, "queues.cq")?;
        nonzero(c.queues.scq as u64, "queues.scq")?;
        nonzero(c.cmp.max_threads as u64, "cmp.max_threads")?;
        nonzero(c.cmp.issue_width as u64, "cmp.issue_width")?;
        nonzero(c.cmp.thread_width as u64, "cmp.thread_width")?;
        Ok(self.cfg)
    }
}

impl MachineConfig {
    /// A validating builder seeded with the Table-1 paper preset.
    pub fn builder() -> MachineConfigBuilder {
        MachineConfigBuilder {
            cfg: MachineConfig::paper_unchecked(),
        }
    }

    /// The Table-1 configuration.
    pub fn paper() -> MachineConfig {
        MachineConfig::builder()
            .build()
            .expect("the paper preset is valid")
    }

    /// Table-1 configuration with the Figure-10 latency override.
    pub fn paper_with_latency(l2: u32, mem: u32) -> MachineConfig {
        MachineConfig::builder()
            .latency(l2, mem)
            .build()
            .expect("the paper preset is valid at any latency")
    }

    /// Canonical byte serialisation of every simulation-relevant field,
    /// for content-addressed result caching: two configurations with the
    /// same field values always produce the same bytes, regardless of
    /// how or in what order they were built. The `trace` block is
    /// excluded — telemetry is proven simulation-invisible
    /// (`telemetry_equiv.rs`), so tracing a run must not change its
    /// cache identity.
    ///
    /// Every struct is destructured exhaustively, so adding a field
    /// anywhere in the configuration tree is a compile error here until
    /// the encoding is extended (bump the version tag when it is).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        fn u32_(out: &mut Vec<u8>, v: u32) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn u64_(out: &mut Vec<u8>, v: u64) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn usize_(out: &mut Vec<u8>, v: usize) {
            u64_(out, v as u64);
        }
        fn bool_(out: &mut Vec<u8>, v: bool) {
            out.push(v as u8);
        }
        fn f64_(out: &mut Vec<u8>, v: f64) {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        fn lat(out: &mut Vec<u8>, l: &hidisc_ooo::Latencies) {
            let hidisc_ooo::Latencies {
                int_alu,
                int_mul,
                int_div,
                fp_alu,
                fp_mul,
                fp_div,
                branch,
                agen,
            } = *l;
            for v in [
                int_alu, int_mul, int_div, fp_alu, fp_mul, fp_div, branch, agen,
            ] {
                u32_(out, v);
            }
        }
        fn core(out: &mut Vec<u8>, c: &CoreConfig) {
            let CoreConfig {
                fetch_width,
                dispatch_width,
                issue_width,
                commit_width,
                ruu_size,
                lsq_size,
                ifq_size,
                int_alu,
                int_mul,
                fp_alu,
                fp_mul,
                mem_ports,
                predictor_entries,
                predictor_kind,
                hw_prefetcher,
                frontend_penalty,
                scheduler,
                lat: latencies,
            } = *c;
            for v in [
                fetch_width,
                dispatch_width,
                issue_width,
                commit_width,
                ruu_size,
                lsq_size,
                ifq_size,
                int_alu,
                int_mul,
                fp_alu,
                fp_mul,
                mem_ports,
                predictor_entries,
            ] {
                u32_(out, v);
            }
            match predictor_kind {
                hidisc_ooo::predictor::PredictorKind::Bimodal => out.push(0),
                hidisc_ooo::predictor::PredictorKind::GShare { history_bits } => {
                    out.push(1);
                    u32_(out, history_bits);
                }
            }
            match hw_prefetcher {
                None => out.push(0),
                Some(hidisc_mem::RptConfig { entries, distance }) => {
                    out.push(1);
                    usize_(out, entries);
                    u32_(out, distance);
                }
            }
            u32_(out, frontend_penalty);
            out.push(match scheduler {
                Scheduler::ReadyList => 0,
                Scheduler::Scan => 1,
            });
            lat(out, &latencies);
        }
        fn cache(out: &mut Vec<u8>, c: &CacheConfig) {
            let CacheConfig {
                sets,
                block_bytes,
                ways,
                latency,
            } = *c;
            for v in [sets, block_bytes, ways, latency] {
                u32_(out, v);
            }
        }

        let MachineConfig {
            superscalar,
            cp,
            ap,
            cmp,
            mem,
            queues,
            deadlock_cycles,
            max_cycles,
            fast_forward,
            ff_check,
            trace: _,
        } = self;

        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(b"HDC1");
        core(&mut out, superscalar);
        core(&mut out, cp);
        core(&mut out, ap);

        let CmpConfig {
            max_threads,
            issue_width,
            thread_width,
            mem_ports,
            int_latency,
            next_line_assist,
            dynamic,
        } = *cmp;
        usize_(&mut out, max_threads);
        for v in [issue_width, thread_width, mem_ports, int_latency] {
            u32_(&mut out, v);
        }
        bool_(&mut out, next_line_assist);
        let crate::dynamic::DynamicConfig {
            adaptive_slip,
            min_slip,
            max_slip,
            sample_period,
            late_threshold,
            selective_trigger,
            usefulness_floor,
            min_observations,
            probation_period,
        } = dynamic;
        bool_(&mut out, adaptive_slip);
        usize_(&mut out, min_slip);
        usize_(&mut out, max_slip);
        u64_(&mut out, sample_period);
        f64_(&mut out, late_threshold);
        bool_(&mut out, selective_trigger);
        f64_(&mut out, usefulness_floor);
        u64_(&mut out, min_observations);
        u32_(&mut out, probation_period);

        let MemConfig {
            l1,
            l2,
            mem_latency,
            mshrs,
        } = mem;
        cache(&mut out, l1);
        cache(&mut out, l2);
        u32_(&mut out, *mem_latency);
        u32_(&mut out, *mshrs);

        let QueueConfig {
            ldq,
            sdq,
            cdq,
            cq,
            scq,
        } = *queues;
        for v in [ldq, sdq, cdq, cq, scq] {
            usize_(&mut out, v);
        }

        u64_(&mut out, *deadlock_cycles);
        u64_(&mut out, *max_cycles);
        bool_(&mut out, *fast_forward);
        bool_(&mut out, *ff_check);
        out
    }

    /// FNV-1a 64-bit hash of [`MachineConfig::canonical_bytes`] — the
    /// configuration's content-address for result caching.
    pub fn canonical_hash(&self) -> u64 {
        fnv1a(FNV_OFFSET, &self.canonical_bytes())
    }

    /// [`MachineConfig::canonical_hash`] with the run *budgets*
    /// (`max_cycles`, `deadlock_cycles`) normalised out. Two
    /// configurations with the same warm hash evolve identically cycle
    /// for cycle — the budgets only decide when a run is cut off — so
    /// warm-start checkpoints ([`crate::Machine::save_warm_checkpoint`])
    /// are keyed by this hash and shared across jobs that differ only in
    /// how long they are allowed to run.
    pub fn warm_hash(&self) -> u64 {
        let mut c = *self;
        c.deadlock_cycles = 0;
        c.max_cycles = 0;
        fnv1a(FNV_OFFSET, &c.canonical_bytes())
    }

    /// The raw Table-1 literal the builder starts from.
    fn paper_unchecked() -> MachineConfig {
        MachineConfig {
            superscalar: CoreConfig::paper_superscalar(),
            cp: CoreConfig::paper_cp(),
            ap: CoreConfig::paper_ap(),
            cmp: CmpConfig::default(),
            mem: MemConfig::paper(),
            queues: QueueConfig::paper(),
            deadlock_cycles: 100_000,
            max_cycles: 2_000_000_000,
            fast_forward: true,
            ff_check: false,
            trace: TraceConfig::OFF,
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_properties() {
        assert!(!Model::Superscalar.has_cmp());
        assert!(!Model::CpAp.has_cmp());
        assert!(Model::CpCmp.has_cmp());
        assert!(Model::HiDisc.has_cmp());
        assert!(Model::CpAp.is_decoupled());
        assert!(Model::HiDisc.is_decoupled());
        assert!(!Model::CpCmp.is_decoupled());
        assert_eq!(Model::ALL.len(), 4);
    }

    #[test]
    fn paper_preset_sane() {
        let c = MachineConfig::paper();
        assert_eq!(c.mem.mem_latency, 120);
        assert_eq!(c.cp.ruu_size, 16);
        assert_eq!(c.ap.ruu_size, 64);
        let f10 = MachineConfig::paper_with_latency(16, 160);
        assert_eq!(f10.mem.l2.latency, 16);
    }

    #[test]
    fn builder_accepts_paper_overrides() {
        let c = MachineConfig::builder()
            .latency(16, 160)
            .scheduler(Scheduler::Scan)
            .deadlock_cycles(5_000)
            .fast_forward(false)
            .build()
            .unwrap();
        assert_eq!(c.mem.l2.latency, 16);
        assert_eq!(c.mem.mem_latency, 160);
        assert_eq!(c.superscalar.scheduler, Scheduler::Scan);
        assert_eq!(c.cp.scheduler, Scheduler::Scan);
        assert_eq!(c.ap.scheduler, Scheduler::Scan);
        assert_eq!(c.deadlock_cycles, 5_000);
        assert!(!c.fast_forward);
    }

    #[test]
    fn builder_rejects_zero_cache_geometry() {
        let mut mem = MemConfig::paper();
        mem.l1.sets = 0;
        let err = MachineConfig::builder().mem(mem).build().unwrap_err();
        assert_eq!(
            err,
            ConfigError::Zero {
                what: "mem.l1.sets"
            }
        );

        let mut mem = MemConfig::paper();
        mem.l2.ways = 0;
        let err = MachineConfig::builder().mem(mem).build().unwrap_err();
        assert_eq!(
            err,
            ConfigError::Zero {
                what: "mem.l2.ways"
            }
        );
    }

    #[test]
    fn builder_rejects_non_power_of_two_blocks() {
        let mut mem = MemConfig::paper();
        mem.l1.block_bytes = 48;
        let err = MachineConfig::builder().mem(mem).build().unwrap_err();
        assert_eq!(
            err,
            ConfigError::NotPowerOfTwo {
                what: "mem.l1.block_bytes",
                value: 48
            }
        );
        assert!(err.to_string().contains("power of two"));
        assert!(err.to_string().contains("48"));
    }

    #[test]
    fn builder_rejects_zero_widths_and_windows() {
        let mut core = CoreConfig::paper_superscalar();
        core.issue_width = 0;
        let err = MachineConfig::builder()
            .superscalar(core)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::Zero {
                what: "superscalar.issue_width"
            }
        );

        let mut cp = CoreConfig::paper_cp();
        cp.ruu_size = 0;
        let err = MachineConfig::builder().cp(cp).build().unwrap_err();
        assert_eq!(
            err,
            ConfigError::Zero {
                what: "cp.ruu_size"
            }
        );
    }

    #[test]
    fn builder_rejects_zero_queue_capacities() {
        let mut q = QueueConfig::paper();
        q.cq = 0;
        let err = MachineConfig::builder().queues(q).build().unwrap_err();
        assert_eq!(err, ConfigError::Zero { what: "queues.cq" });
        assert!(err.to_string().contains("queues.cq"));
    }
}
