//! The machine driver: builds one of the four models from a compiled
//! workload and steps every processor cycle by cycle.

use crate::cmp::CmpEngine;
use crate::config::{MachineConfig, Model};
use crate::stats::MachineStats;
use hidisc_isa::mem::Memory;
use hidisc_isa::{IntReg, IsaError, Program, Queue, Result};
use hidisc_mem::MemSystem;
use hidisc_ooo::{CoreCtx, OooCore, QueueFile, TriggerFork};
use hidisc_slicer::{CompiledWorkload, ExecEnv};

/// Removes CMP integration annotations — used for the baseline
/// superscalar, which runs the original binary untouched.
fn strip_cmp_annotations(p: &Program) -> Program {
    let mut p = p.clone();
    for pc in 0..p.len() {
        let a = p.annot_mut(pc);
        a.trigger = None;
        a.scq_get = false;
    }
    p
}

/// One simulated machine instance.
#[derive(Debug)]
pub struct Machine {
    model: Model,
    cores: Vec<OooCore>,
    cmp: Option<CmpEngine>,
    queues: QueueFile,
    mem_sys: MemSystem,
    /// Architectural data memory (inspect after `run` for results).
    pub data: Memory,
    now: u64,
    cfg: MachineConfig,
}

impl Machine {
    /// Builds a machine of the given model around a compiled workload,
    /// with the workload's initial registers and memory image.
    pub fn new(
        model: Model,
        w: &CompiledWorkload,
        env: &ExecEnv,
        cfg: MachineConfig,
    ) -> Machine {
        let mut cores = Vec::new();
        match model {
            Model::Superscalar => {
                cores.push(OooCore::new(
                    "superscalar",
                    cfg.superscalar,
                    strip_cmp_annotations(&w.original),
                ));
            }
            Model::CpCmp => {
                cores.push(OooCore::new("superscalar+", cfg.superscalar, w.original.clone()));
            }
            Model::CpAp | Model::HiDisc => {
                cores.push(OooCore::new("CP", cfg.cp, w.cs.clone()));
                cores.push(OooCore::new("AP", cfg.ap, w.access.clone()));
            }
        }
        for core in &mut cores {
            for &(r, v) in &env.regs {
                core.set_reg(r, v);
            }
        }
        let cmp = model
            .has_cmp()
            .then(|| CmpEngine::new(cfg.cmp, w.cmas.iter().map(|t| t.prog.clone()).collect()));

        Machine {
            model,
            cores,
            cmp,
            queues: QueueFile::new(cfg.queues),
            mem_sys: MemSystem::new(cfg.mem),
            data: env.mem.clone(),
            now: 0,
            cfg,
        }
    }

    /// The current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Runs to completion (every core commits its `halt`).
    ///
    /// `work_instrs` is the dynamic instruction count of the original
    /// sequential program — the IPC denominator shared by all models.
    pub fn run(&mut self, work_instrs: u64) -> Result<MachineStats> {
        let mut triggers: Vec<TriggerFork> = Vec::new();
        let mut last_committed = 0u64;
        let mut idle = 0u64;

        while self.cores.iter().any(|c| !c.is_done()) {
            let Machine { cores, cmp, queues, mem_sys, data, now, .. } = self;
            for core in cores.iter_mut() {
                let mut ctx =
                    CoreCtx { mem_sys, queues, data, triggers: &mut triggers };
                core.step(*now, &mut ctx)?;
            }
            if let Some(engine) = cmp.as_mut() {
                for t in triggers.drain(..) {
                    engine.fork(t);
                }
                let mut unused = Vec::new();
                let mut ctx =
                    CoreCtx { mem_sys, queues, data, triggers: &mut unused };
                engine.step(*now, &mut ctx)?;
            } else {
                triggers.clear();
            }
            self.now += 1;

            // Progress watchdog.
            let committed: u64 = self.cores.iter().map(|c| c.stats().committed).sum();
            if committed == last_committed {
                idle += 1;
                if idle > self.cfg.deadlock_cycles {
                    return Err(IsaError::Exec {
                        pc: 0,
                        msg: format!(
                            "machine {} made no progress for {} cycles (deadlock?) at cycle {}",
                            self.model, idle, self.now
                        ),
                    });
                }
            } else {
                idle = 0;
                last_committed = committed;
            }
            if self.now > self.cfg.max_cycles {
                return Err(IsaError::Exec {
                    pc: 0,
                    msg: format!("cycle budget exceeded ({})", self.cfg.max_cycles),
                });
            }
        }

        Ok(self.stats(work_instrs))
    }

    /// Builds the statistics snapshot.
    fn stats(&self, work_instrs: u64) -> MachineStats {
        let queues = {
            let mut out: [hidisc_ooo::queues::QueueStats; 5] = Default::default();
            for (i, q) in Queue::ALL.into_iter().enumerate() {
                out[i] = *self.queues.stats(q);
            }
            out
        };
        MachineStats {
            model: self.model,
            cycles: self.now,
            work_instrs,
            cores: self.cores.iter().map(|c| (c.name, *c.stats())).collect(),
            mem: self.mem_sys.stats(),
            cmp: self.cmp.as_ref().map(|c| c.stats()),
            queues,
            mem_checksum: self.data.checksum(),
        }
    }

    /// Reads an integer register of core `idx` (result inspection in
    /// tests).
    pub fn core_reg(&self, idx: usize, r: IntReg) -> i64 {
        self.cores[idx].regs.get_i(r)
    }
}

/// Convenience wrapper: build + run one model.
pub fn run_model(
    model: Model,
    w: &CompiledWorkload,
    env: &ExecEnv,
    cfg: MachineConfig,
) -> Result<MachineStats> {
    let mut m = Machine::new(model, w, env, cfg);
    m.run(w.profile.dyn_instrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::asm::assemble;
    use hidisc_isa::interp::Interp;
    use hidisc_slicer::{compile, CompilerConfig};

    /// A pointer-free strided kernel: loads, computes, stores.
    const KERNEL: &str = r"
            li r1, 0x100000
            li r2, 256
        loop:
            ld r3, 0(r1)
            add r4, r3, 5
            sd r4, 0x80000(r1)
            add r1, r1, 64
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ";

    fn compiled() -> (CompiledWorkload, ExecEnv) {
        let p = assemble("k", KERNEL).unwrap();
        let mut mem = Memory::new();
        for i in 0..4096u64 {
            mem.write_i64(0x100000 + i * 8, i as i64).unwrap();
        }
        let env = ExecEnv { regs: vec![], mem, max_steps: 10_000_000 };
        let w = compile(&p, &env, &CompilerConfig::default()).unwrap();
        (w, env)
    }

    fn golden(env: &ExecEnv) -> u64 {
        let p = assemble("k", KERNEL).unwrap();
        let mut i = Interp::new(&p, env.mem.clone());
        i.run(10_000_000).unwrap();
        i.mem.checksum()
    }

    #[test]
    fn all_models_produce_identical_memory() {
        let (w, env) = compiled();
        let want = golden(&env);
        for model in Model::ALL {
            let stats = run_model(model, &w, &env, MachineConfig::paper()).unwrap();
            assert_eq!(stats.mem_checksum, want, "model {model} diverged");
            assert!(stats.cycles > 0);
            assert_eq!(stats.work_instrs, w.profile.dyn_instrs);
        }
    }

    #[test]
    fn cmp_models_reduce_misses_on_strided_kernel() {
        let (w, env) = compiled();
        let base = run_model(Model::Superscalar, &w, &env, MachineConfig::paper()).unwrap();
        let hidisc = run_model(Model::HiDisc, &w, &env, MachineConfig::paper()).unwrap();
        assert!(
            hidisc.l1_miss_rate() < base.l1_miss_rate(),
            "HiDISC {:.3} vs base {:.3}",
            hidisc.l1_miss_rate(),
            base.l1_miss_rate()
        );
        let cmp = hidisc.cmp.unwrap();
        assert!(cmp.forks >= 1);
        assert!(cmp.prefetches > 0);
    }

    #[test]
    fn hidisc_not_slower_than_baseline_here() {
        let (w, env) = compiled();
        let base = run_model(Model::Superscalar, &w, &env, MachineConfig::paper()).unwrap();
        let hidisc = run_model(Model::HiDisc, &w, &env, MachineConfig::paper()).unwrap();
        let s = hidisc.speedup_over(&base);
        assert!(s > 0.9, "speedup {s:.3}");
    }

    #[test]
    fn decoupled_queues_carry_traffic() {
        let (w, env) = compiled();
        let st = run_model(Model::CpAp, &w, &env, MachineConfig::paper()).unwrap();
        // LDQ and CQ must both have flowed.
        assert!(st.queues[0].pushes > 0, "LDQ unused");
        assert!(st.queues[3].pushes > 0, "CQ unused");
        // pushes == pops at termination for matched streams
        assert_eq!(st.queues[0].pushes, st.queues[0].pops);
        assert_eq!(st.queues[3].pushes, st.queues[3].pops);
    }

    #[test]
    fn latency_sweep_hurts_baseline_more() {
        let (w, env) = compiled();
        let base_fast =
            run_model(Model::Superscalar, &w, &env, MachineConfig::paper_with_latency(4, 40))
                .unwrap();
        let base_slow =
            run_model(Model::Superscalar, &w, &env, MachineConfig::paper_with_latency(16, 160))
                .unwrap();
        let hd_fast =
            run_model(Model::HiDisc, &w, &env, MachineConfig::paper_with_latency(4, 40)).unwrap();
        let hd_slow =
            run_model(Model::HiDisc, &w, &env, MachineConfig::paper_with_latency(16, 160))
                .unwrap();
        let base_loss = base_fast.ipc() / base_slow.ipc();
        let hd_loss = hd_fast.ipc() / hd_slow.ipc();
        assert!(
            hd_loss < base_loss,
            "HiDISC should tolerate latency better: hd {hd_loss:.3} vs base {base_loss:.3}"
        );
    }
}

impl Machine {
    /// Captures pipeline snapshots of every core (for traces).
    pub fn snapshots(&self) -> Vec<hidisc_ooo::core::PipelineSnapshot> {
        self.cores.iter().map(|c| c.snapshot()).collect()
    }

    /// Live CMP thread count, if this model has a CMP.
    pub fn cmp_threads(&self) -> Option<usize> {
        self.cmp.as_ref().map(|c| c.live_threads())
    }

    /// Runs like [`Machine::run`] but invokes `observer` after every cycle
    /// until it returns `false` (observation stops; simulation continues).
    pub fn run_observed(
        &mut self,
        work_instrs: u64,
        mut observer: impl FnMut(&Machine) -> bool,
    ) -> Result<MachineStats> {
        let mut observing = true;
        let mut triggers: Vec<TriggerFork> = Vec::new();
        let mut last_committed = 0u64;
        let mut idle = 0u64;
        while self.cores.iter().any(|c| !c.is_done()) {
            {
                let Machine { cores, cmp, queues, mem_sys, data, now, .. } = self;
                for core in cores.iter_mut() {
                    let mut ctx = CoreCtx { mem_sys, queues, data, triggers: &mut triggers };
                    core.step(*now, &mut ctx)?;
                }
                if let Some(engine) = cmp.as_mut() {
                    for t in triggers.drain(..) {
                        engine.fork(t);
                    }
                    let mut unused = Vec::new();
                    let mut ctx = CoreCtx { mem_sys, queues, data, triggers: &mut unused };
                    engine.step(*now, &mut ctx)?;
                } else {
                    triggers.clear();
                }
            }
            self.now += 1;
            if observing {
                observing = observer(self);
            }
            let committed: u64 = self.cores.iter().map(|c| c.stats().committed).sum();
            if committed == last_committed {
                idle += 1;
                if idle > self.cfg.deadlock_cycles {
                    return Err(IsaError::Exec {
                        pc: 0,
                        msg: format!("machine {} deadlocked at cycle {}", self.model, self.now),
                    });
                }
            } else {
                idle = 0;
                last_committed = committed;
            }
            if self.now > self.cfg.max_cycles {
                return Err(IsaError::Exec { pc: 0, msg: "cycle budget exceeded".into() });
            }
        }
        Ok(self.stats(work_instrs))
    }
}

#[cfg(test)]
mod observer_tests {
    use super::*;
    use hidisc_isa::asm::assemble;
    use hidisc_slicer::{compile, CompilerConfig};

    #[test]
    fn observer_sees_every_cycle_until_it_stops() {
        let p = assemble(
            "t",
            "li r1, 0x1000\nli r2, 32\nloop:\nld r3, 0(r1)\nadd r1, r1, 8\nsub r2, r2, 1\nbne r2, r0, loop\nhalt",
        )
        .unwrap();
        let env = ExecEnv { regs: vec![], mem: Memory::new(), max_steps: 100_000 };
        let w = compile(&p, &env, &CompilerConfig::default()).unwrap();
        let mut m = Machine::new(Model::HiDisc, &w, &env, MachineConfig::paper());
        let mut observed = 0u64;
        let st = m
            .run_observed(w.profile.dyn_instrs, |mach| {
                observed += 1;
                assert_eq!(mach.now(), observed);
                assert_eq!(mach.snapshots().len(), 2); // CP + AP
                observed < 50 // stop observing after 50 cycles
            })
            .unwrap();
        assert_eq!(observed, 50.min(st.cycles));
        assert!(st.cycles > 0);
    }

    #[test]
    fn observed_run_matches_plain_run() {
        let p = assemble(
            "t",
            "li r1, 0x1000\nli r2, 16\nloop:\nld r3, 0(r1)\nsd r3, 0x100(r1)\nadd r1, r1, 8\nsub r2, r2, 1\nbne r2, r0, loop\nhalt",
        )
        .unwrap();
        let env = ExecEnv { regs: vec![], mem: Memory::new(), max_steps: 100_000 };
        let w = compile(&p, &env, &CompilerConfig::default()).unwrap();
        let a = Machine::new(Model::HiDisc, &w, &env, MachineConfig::paper())
            .run(w.profile.dyn_instrs)
            .unwrap();
        let b = Machine::new(Model::HiDisc, &w, &env, MachineConfig::paper())
            .run_observed(w.profile.dyn_instrs, |_| true)
            .unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.mem_checksum, b.mem_checksum);
    }
}
