//! The machine driver: builds one of the four models from a compiled
//! workload and steps every processor cycle by cycle.

use crate::cmp::{CmpEngine, CmpStats};
use crate::config::{fnv1a, MachineConfig, Model, FNV_OFFSET};
use crate::error::RunError;
use crate::stats::MachineStats;
use hidisc_isa::mem::Memory;
use hidisc_isa::wire::{Dec, Enc, WireError, WireResult};
use hidisc_isa::{IntReg, Program, Queue};
use hidisc_mem::{MemStats, MemSystem};
use hidisc_ooo::queues::QueueStats;
use hidisc_ooo::{CoreCtx, CoreStats, OooCore, QueueFile, TriggerFork};
use hidisc_slicer::{CompiledWorkload, ExecEnv};
use hidisc_telemetry::{
    Category, EventData, IntervalSample, Telemetry, TraceSink, SOURCE_CMP, SOURCE_MACHINE,
};
use std::ops::ControlFlow;
use std::time::Instant;

/// A per-cycle observer hooked into [`Machine::run_observed`]: called after
/// every stepped cycle until it returns [`ControlFlow::Break`], after which
/// observation stops (and fast-forward may engage) while the simulation
/// runs on.
///
/// Closures observe directly — any `FnMut(&Machine) -> bool` is an
/// `Observer` through the blanket impl below (`true` = keep observing).
pub trait Observer {
    /// Inspects the machine after a cycle; `Break` ends observation.
    fn on_cycle(&mut self, m: &Machine) -> ControlFlow<()>;
}

impl<F: FnMut(&Machine) -> bool> Observer for F {
    fn on_cycle(&mut self, m: &Machine) -> ControlFlow<()> {
        if self(m) {
            ControlFlow::Continue(())
        } else {
            ControlFlow::Break(())
        }
    }
}

/// Knobs threaded through the unified run loop ([`Machine::run_loop`]):
/// every public `run*` entry point is a thin wrapper selecting a subset.
struct RunCtl<'s, 'o> {
    /// Drain telemetry events into this sink as the buffer fills.
    stream: Option<&'s mut dyn TraceSink>,
    /// Abort with [`RunError::Deadline`] past this host time.
    deadline: Option<Instant>,
    /// Stop (without error) once the machine clock reaches this cycle.
    stop_at: Option<u64>,
    /// Per-cycle observer; fast-forward stays off while it observes.
    observer: Option<&'o mut dyn Observer>,
}

/// Removes CMP integration annotations — used for the baseline
/// superscalar, which runs the original binary untouched.
fn strip_cmp_annotations(p: &Program) -> Program {
    let mut p = p.clone();
    for pc in 0..p.len() {
        let a = p.annot_mut(pc);
        a.trigger = None;
        a.scq_get = false;
    }
    p
}

/// One simulated machine instance.
#[derive(Debug, Clone)]
pub struct Machine {
    model: Model,
    cores: Vec<OooCore>,
    cmp: Option<CmpEngine>,
    queues: QueueFile,
    mem_sys: MemSystem,
    /// Architectural data memory (inspect after `run` for results).
    pub data: Memory,
    now: u64,
    cfg: MachineConfig,
    /// Fast-forward jumps taken so far.
    ff_jumps: u64,
    /// Simulated cycles skipped (but fully accounted) by fast-forward.
    ff_skipped: u64,
    /// Host wall-clock nanoseconds accumulated across `run`/`run_observed`.
    host_wall_ns: u64,
    /// Telemetry recorder (events + interval metrics), configured by
    /// [`MachineConfig::trace`]. Disabled recording never touches
    /// simulated state, so it is excluded from every equivalence check.
    telemetry: Telemetry,
}

/// Statistics snapshot used by fast-forward both to measure what one idle
/// cycle adds and (under `ff_check`) to compare a jumped machine against a
/// cycle-stepped shadow.
#[derive(Debug, Clone, PartialEq)]
struct FfSnapshot {
    cores: Vec<CoreStats>,
    queues: [QueueStats; 5],
    mem: MemStats,
    cmp: Option<CmpStats>,
}

/// Fast-forward detector state threaded through the run loop.
#[derive(Debug, Default)]
struct FfState {
    /// Token after the previously stepped cycle.
    last_token: Option<u64>,
    /// Statistics snapshot and the cycle it was taken after; a token match
    /// exactly one cycle later yields the per-cycle idle delta.
    armed: Option<(u64, FfSnapshot)>,
    /// Consecutive detection attempts whose token mismatched (the machine
    /// kept making progress without committing).
    miss_streak: u32,
    /// Cycles left to skip detection entirely. Phases that progress every
    /// cycle (e.g. draining a full window of independent ALU work) would
    /// otherwise pay a token hash per cycle for nothing, so mismatch
    /// streaks back detection off exponentially (capped). A real stall
    /// window is hundreds of cycles, so re-engaging a few cycles late
    /// costs almost nothing.
    cooldown: u32,
}

/// Longest detection pause under mismatch backoff.
const FF_MAX_COOLDOWN: u32 = 8;

impl FfState {
    /// Cheap reset for cycles that visibly progressed (commits): the token
    /// necessarily changed, so skip hashing it at all. Commit cycles do
    /// not touch the backoff — they cost nothing to detect.
    fn reset(&mut self) {
        self.last_token = None;
        self.armed = None;
    }

    /// Records a failed detection attempt and grows the cooldown: the
    /// first two misses are free (a jump needs two consecutive idle cycles
    /// anyway), then 1, 2, 4, ... up to [`FF_MAX_COOLDOWN`].
    fn note_miss(&mut self) {
        self.miss_streak = self.miss_streak.saturating_add(1);
        if self.miss_streak > 2 {
            self.cooldown = (1u32 << (self.miss_streak - 3).min(3)).min(FF_MAX_COOLDOWN);
        }
    }
}

impl Machine {
    /// Builds a machine of the given model around a compiled workload,
    /// with the workload's initial registers and memory image.
    pub fn new(model: Model, w: &CompiledWorkload, env: &ExecEnv, cfg: MachineConfig) -> Machine {
        let mut cores = Vec::new();
        match model {
            Model::Superscalar => {
                cores.push(OooCore::new(
                    "superscalar",
                    cfg.superscalar,
                    strip_cmp_annotations(&w.original),
                ));
            }
            Model::CpCmp => {
                cores.push(OooCore::new(
                    "superscalar+",
                    cfg.superscalar,
                    w.original.clone(),
                ));
            }
            Model::CpAp | Model::HiDisc => {
                cores.push(OooCore::new("CP", cfg.cp, w.cs.clone()));
                cores.push(OooCore::new("AP", cfg.ap, w.access.clone()));
            }
        }
        for core in &mut cores {
            for &(r, v) in &env.regs {
                core.set_reg(r, v);
            }
        }
        let cmp = model
            .has_cmp()
            .then(|| CmpEngine::new(cfg.cmp, w.cmas.iter().map(|t| t.prog.clone()).collect()));

        Machine {
            model,
            cores,
            cmp,
            queues: QueueFile::new(cfg.queues),
            mem_sys: MemSystem::new(cfg.mem),
            data: env.mem.clone(),
            now: 0,
            telemetry: Telemetry::new(cfg.trace),
            cfg,
            ff_jumps: 0,
            ff_skipped: 0,
            host_wall_ns: 0,
        }
    }

    /// The telemetry recorder (events, peaks and interval metrics
    /// accumulated so far).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Fetch pc of the first unfinished core — where the front end is
    /// stuck when the watchdog fires.
    fn stuck_pc(&self) -> u32 {
        self.cores
            .iter()
            .find(|c| !c.is_done())
            .map_or(0, |c| c.fetch_pc())
    }

    /// Steps every processor of the machine through one cycle at time
    /// `self.now` (the caller advances the clock).
    fn step_cycle(&mut self, triggers: &mut Vec<TriggerFork>) -> hidisc_isa::Result<()> {
        let Machine {
            cores,
            cmp,
            queues,
            mem_sys,
            data,
            now,
            telemetry,
            ..
        } = self;
        telemetry.set_clock(*now);
        let mut any_warm = false;
        for (i, core) in cores.iter_mut().enumerate() {
            telemetry.set_source(i as u8);
            let mut ctx = CoreCtx {
                mem_sys,
                queues,
                data,
                triggers,
                trace: &mut *telemetry,
            };
            if core.is_warm() {
                any_warm = true;
                core.warm_step(*now, &mut ctx)?;
            } else {
                core.step(*now, &mut ctx)?;
            }
        }
        if let Some(engine) = cmp.as_mut() {
            telemetry.set_source(SOURCE_CMP);
            for t in triggers.drain(..) {
                engine.fork(t, telemetry);
            }
            let mut unused = Vec::new();
            let mut ctx = CoreCtx {
                mem_sys,
                queues,
                data,
                triggers: &mut unused,
                trace: &mut *telemetry,
            };
            // Once any core is in a functional warm phase, the CMP runs
            // functionally too: at warm-mode commit rates the timed engine
            // would fall behind the instruction stream by the full miss
            // latency per access and its prefetches would arrive useless.
            if any_warm {
                engine.warm_step(*now, &mut ctx)?;
            } else {
                engine.step(*now, &mut ctx)?;
            }
        } else {
            triggers.clear();
        }
        Ok(())
    }

    /// Takes one interval-metrics sample at the current cycle.
    fn sample_metrics(&mut self) {
        let committed: u64 = self.cores.iter().map(|c| c.stats().committed).sum();
        let mut queue_depth = [0u32; 5];
        for (i, q) in Queue::ALL.into_iter().enumerate() {
            queue_depth[i] = self.queues.len(q) as u32;
        }
        let mshr = self.mem_sys.outstanding(self.now) as u32;
        let live_threads = self.cmp.as_ref().map_or(0, |c| c.live_threads()) as u32;
        self.telemetry.record_sample(IntervalSample {
            cycle: self.now,
            committed,
            queue_depth,
            mshr,
            live_threads,
        });
    }

    /// Fingerprint of every piece of machine state that an idle cycle must
    /// not change: two equal tokens on consecutive cycles prove the second
    /// cycle only repeated stalls (reject/stall counters move, nothing
    /// else). See DESIGN.md, "Idle-cycle fast-forward".
    fn progress_token(&self) -> u64 {
        use hidisc_ooo::queues::token_mix as mix;
        let mut h = 0u64;
        for c in &self.cores {
            h = mix(h, c.progress_token());
        }
        h = mix(h, self.queues.progress_token());
        h = mix(h, self.mem_sys.progress_token());
        if let Some(e) = &self.cmp {
            h = mix(h, e.progress_token());
        }
        h
    }

    /// The earliest cycle strictly after `now` at which any component's
    /// behaviour can change by the clock alone: an issued instruction
    /// completes, an MSHR fill lands, a front-end refill finishes, or a
    /// CMP thread wakes. `None` means the machine is permanently stuck
    /// (only the deadlock watchdog can end it).
    fn next_event_after(&self, now: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut fold = |t: Option<u64>| {
            if let Some(t) = t {
                if next.is_none_or(|n| t < n) {
                    next = Some(t);
                }
            }
        };
        for c in &self.cores {
            fold(c.next_event(now));
        }
        // Core issue stages timestamp accesses at `now + agen`, so a full
        // MSHR file stops rejecting them up to `agen` cycles before the
        // fill's `ready_at`; wake early by the largest such lead (clamped
        // to stay strictly after `now`).
        if let Some(r) = self.mem_sys.next_event(now) {
            let lead = self
                .cores
                .iter()
                .map(|c| c.access_lead())
                .max()
                .unwrap_or(0);
            fold(Some(r.saturating_sub(lead).max(now + 1)));
        }
        if let Some(e) = &self.cmp {
            fold(e.next_event(now));
        }
        next
    }

    fn ff_snapshot(&self) -> FfSnapshot {
        FfSnapshot {
            cores: self.cores.iter().map(|c| *c.stats()).collect(),
            queues: self.queues.all_stats(),
            mem: self.mem_sys.stats(),
            cmp: self.cmp.as_ref().map(|c| c.stats()),
        }
    }

    /// Fast-forward detection and jump, called after each stepped cycle
    /// (with the watchdog bookkeeping already done for it).
    ///
    /// Every hashed cycle arms a statistics snapshot; the first cycle whose
    /// progress token matches its predecessor's diffs against that snapshot
    /// for the exact per-cycle stall delta, and since no pending timestamp
    /// lies between here and the next event, every cycle up to that event
    /// would repeat it bit-for-bit. The jump multiplies the delta in,
    /// advances the clock, and keeps the watchdog/budget error cycles (and
    /// messages) identical to the per-cycle loop — capping the jump so
    /// those errors still fire exactly on time.
    fn ff_after_cycle(
        &mut self,
        ff: &mut FfState,
        idle: &mut u64,
        stop_at: Option<u64>,
    ) -> Result<(), RunError> {
        if ff.cooldown > 0 {
            ff.cooldown -= 1;
            return Ok(());
        }
        let tok = self.progress_token();
        if ff.last_token != Some(tok) {
            // Progress. Arm a snapshot anyway (it is cheap): if the very
            // next cycle turns out idle, its statistics delta against this
            // snapshot is already the per-cycle delta and the jump can
            // happen without stepping a second idle cycle.
            ff.last_token = Some(tok);
            ff.armed = Some((self.now, self.ff_snapshot()));
            ff.note_miss();
            return Ok(());
        }
        // The token matched. If detection just resumed after a cooldown the
        // match spans a gap of unhashed cycles — still conclusive (every
        // token component is monotone or forward-only, so equal endpoints
        // mean none of the intervening cycles changed anything).
        ff.miss_streak = 0;
        let snap = self.ff_snapshot();
        let Some((armed_at, prev)) = ff.armed.replace((self.now, snap.clone())) else {
            return Ok(());
        };
        // A delta is a true *per-cycle* delta only if the armed snapshot is
        // exactly one cycle old — a post-cooldown gap match re-arms instead.
        if armed_at + 1 != self.now {
            return Ok(());
        }

        // How far can we jump? `self.now` cycles are complete; the cycle
        // just stepped ran at `self.now - 1`. Any threshold in
        // (self.now - 1, e) would itself be an event, so cycles
        // self.now .. e-1 replay the measured idle cycle exactly.
        let next_cycle = self.now;
        let j_event = self
            .next_event_after(next_cycle - 1)
            .map(|e| e - next_cycle);
        // The watchdog would fire after `j_dead` more commit-free cycles,
        // the budget after `j_budget` more cycles (both ≥ 1 here, or the
        // caller's own checks would already have erred).
        let j_dead = self.cfg.deadlock_cycles + 1 - *idle;
        let j_budget = self.cfg.max_cycles + 1 - next_cycle;
        let mut j = j_dead.min(j_budget);
        if let Some(je) = j_event {
            j = j.min(je);
        }
        // A bounded run (`run_to_cycle`) must stop exactly on its target
        // so restored-and-resumed runs stay bit-identical.
        if let Some(stop) = stop_at {
            j = j.min(stop.saturating_sub(next_cycle));
        }
        // Interval metrics sample on the cycle grid: cap the jump at the
        // next sample boundary so no sample point is skipped. Stats are
        // unchanged (the replayed idle deltas are per-cycle); only the
        // host-side jump counters see more, smaller jumps.
        let iv = self.telemetry.metrics_interval();
        if let Some(intervals) = next_cycle.checked_div(iv) {
            let next_sample = (intervals + 1) * iv;
            j = j.min(next_sample - next_cycle);
        }
        if j == 0 {
            return Ok(());
        }

        let shadow = self.cfg.ff_check.then(|| self.clone());

        // Replay j idle cycles in one step.
        for (core, (now_s, prev_s)) in self
            .cores
            .iter_mut()
            .zip(snap.cores.iter().zip(&prev.cores))
        {
            core.add_idle_stats(&now_s.delta_since(prev_s), j);
        }
        let mut dq: [QueueStats; 5] = Default::default();
        for (d, (now_q, prev_q)) in dq.iter_mut().zip(snap.queues.iter().zip(&prev.queues)) {
            *d = now_q.delta_since(prev_q);
        }
        self.queues.add_idle_scaled(&dq, j);
        debug_assert_eq!(
            snap.mem,
            MemStats {
                mshr_rejects: snap.mem.mshr_rejects,
                ..prev.mem
            },
            "fast-forward measured a non-idle memory delta"
        );
        self.mem_sys
            .add_idle_rejects(snap.mem.mshr_rejects - prev.mem.mshr_rejects, j);
        if let (Some(engine), Some(cn), Some(cp)) =
            (self.cmp.as_mut(), snap.cmp.as_ref(), prev.cmp.as_ref())
        {
            engine.add_idle_cycles(&cn.delta_since(cp), j);
        }
        self.now += j;
        *idle += j;
        self.ff_jumps += 1;
        self.ff_skipped += j;
        if self.telemetry.on(Category::Machine) {
            self.telemetry.set_clock(next_cycle);
            self.telemetry.set_source(SOURCE_MACHINE);
            self.telemetry.emit(EventData::FastForward { skipped: j });
        }
        if iv != 0 && self.now.is_multiple_of(iv) {
            self.sample_metrics();
        }
        ff.armed = Some((self.now, self.ff_snapshot()));

        // Differential mode: the cycle-stepped shadow must land on the
        // same clock, statistics, structural state and memory.
        if let Some(mut sh) = shadow {
            let mut trig = Vec::new();
            for _ in 0..j {
                sh.step_cycle(&mut trig)
                    .expect("differential shadow step failed");
                sh.now += 1;
            }
            assert_eq!(self.now, sh.now, "fast-forward clock diverged");
            assert_eq!(
                self.ff_snapshot(),
                sh.ff_snapshot(),
                "fast-forward statistics diverged"
            );
            assert_eq!(
                self.progress_token(),
                sh.progress_token(),
                "fast-forward structural state diverged"
            );
            assert_eq!(
                self.data.checksum(),
                sh.data.checksum(),
                "fast-forward memory diverged"
            );
        }

        // If the jump landed on a watchdog/budget bound, raise the same
        // error the per-cycle loop would have (deadlock is checked first
        // there, so it wins ties).
        if j == j_dead && j_dead <= j_budget {
            return Err(RunError::Watchdog {
                model: self.model,
                idle: *idle,
                cycle: self.now,
                pc: self.stuck_pc(),
            });
        }
        if j == j_budget {
            return Err(RunError::CycleBudget {
                limit: self.cfg.max_cycles,
            });
        }
        Ok(())
    }

    /// Runs to completion (every core commits its `halt`).
    ///
    /// `work_instrs` is the dynamic instruction count of the original
    /// sequential program — the IPC denominator shared by all models.
    pub fn run(&mut self, work_instrs: u64) -> Result<MachineStats, RunError> {
        self.run_inner(work_instrs, None, None)
    }

    /// Like [`Machine::run`], but drains buffered telemetry events into
    /// `sink` whenever the buffer reaches half its cap (and once more at
    /// the end), so arbitrarily long runs can be traced without dropping
    /// events. Simulated results are bit-identical to [`Machine::run`];
    /// only the export path differs. Events drop only if a single cycle
    /// emits more than half the cap — at the default cap that cannot
    /// happen.
    pub fn run_streamed(
        &mut self,
        work_instrs: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<MachineStats, RunError> {
        self.run_inner(work_instrs, Some(sink), None)
    }

    /// Like [`Machine::run`], but aborts with
    /// [`RunError::Deadline`] (carrying the cycle reached) once the
    /// host clock passes `deadline`. The deadline is polled every few
    /// thousand simulated cycles, so expiry is detected promptly without
    /// a per-cycle syscall.
    pub fn run_deadline(
        &mut self,
        work_instrs: u64,
        deadline: Instant,
    ) -> Result<MachineStats, RunError> {
        self.run_inner(work_instrs, None, Some(deadline))
    }

    /// Simulated cycles between host-clock deadline polls.
    const DEADLINE_CHECK_CYCLES: u64 = 4096;

    fn run_inner(
        &mut self,
        work_instrs: u64,
        stream: Option<&mut dyn TraceSink>,
        deadline: Option<Instant>,
    ) -> Result<MachineStats, RunError> {
        self.run_loop(RunCtl {
            stream,
            deadline,
            stop_at: None,
            observer: None,
        })?;
        Ok(self.stats(work_instrs))
    }

    /// Progress watchdog + cycle-budget check shared by every run loop;
    /// called once per stepped cycle with the loop's idle/commit trackers.
    fn tick_watchdog(&self, idle: &mut u64, last_committed: &mut u64) -> Result<(), RunError> {
        let committed: u64 = self.cores.iter().map(|c| c.stats().committed).sum();
        if committed == *last_committed {
            *idle += 1;
            if *idle > self.cfg.deadlock_cycles {
                return Err(RunError::Watchdog {
                    model: self.model,
                    idle: *idle,
                    cycle: self.now,
                    pc: self.stuck_pc(),
                });
            }
        } else {
            *idle = 0;
            *last_committed = committed;
        }
        if self.now > self.cfg.max_cycles {
            return Err(RunError::CycleBudget {
                limit: self.cfg.max_cycles,
            });
        }
        Ok(())
    }

    /// The one cycle loop behind [`Machine::run`], [`Machine::run_streamed`],
    /// [`Machine::run_deadline`], [`Machine::run_observed`] and
    /// [`Machine::run_to_cycle`]: steps until every core commits its halt
    /// (or `stop_at` is reached), with telemetry sampling, optional event
    /// streaming, the per-cycle observer, the progress watchdog, the cycle
    /// budget, the host deadline and idle-cycle fast-forward all handled in
    /// one place.
    fn run_loop(&mut self, mut ctl: RunCtl<'_, '_>) -> Result<(), RunError> {
        let t0 = Instant::now();
        let mut triggers: Vec<TriggerFork> = Vec::new();
        let mut last_committed: u64 = self.cores.iter().map(|c| c.stats().committed).sum();
        let mut idle = 0u64;
        let mut ff = FfState::default();
        let ff_on = self.cfg.fast_forward;
        let iv = self.telemetry.metrics_interval();
        let drain_at = (self.cfg.trace.event_cap / 2).max(1);
        let mut next_deadline_check = self.now;
        let mut observing = ctl.observer.is_some();

        while self.cores.iter().any(|c| !c.is_done()) {
            if ctl.stop_at.is_some_and(|s| self.now >= s) {
                break;
            }
            self.step_cycle(&mut triggers)?;
            self.now += 1;
            if iv != 0 && self.now.is_multiple_of(iv) {
                self.sample_metrics();
            }
            if let Some(sink) = ctl.stream.as_deref_mut() {
                if self.telemetry.events().len() >= drain_at {
                    self.telemetry.drain_into(sink);
                }
            }
            if observing {
                let obs = ctl
                    .observer
                    .as_deref_mut()
                    .expect("observing implies observer");
                observing = obs.on_cycle(self).is_continue();
            }
            self.tick_watchdog(&mut idle, &mut last_committed)?;
            if let Some(deadline) = ctl.deadline {
                if self.now >= next_deadline_check {
                    next_deadline_check = self.now + Self::DEADLINE_CHECK_CYCLES;
                    if Instant::now() >= deadline {
                        self.host_wall_ns += t0.elapsed().as_nanos() as u64;
                        return Err(RunError::Deadline { cycle: self.now });
                    }
                }
            }
            // Fast-forwarding would hide cycles from an active observer, so
            // it only engages once observation has stopped.
            if ff_on && !observing {
                if idle == 0 {
                    ff.reset();
                } else {
                    self.ff_after_cycle(&mut ff, &mut idle, ctl.stop_at)?;
                }
            }
        }

        if let Some(sink) = ctl.stream {
            self.telemetry.drain_into(sink);
        }
        self.host_wall_ns += t0.elapsed().as_nanos() as u64;
        Ok(())
    }

    /// Runs until the machine clock reaches `stop_at` (or every core
    /// halts, whichever comes first). Returns `true` when the workload
    /// completed before the target cycle.
    ///
    /// A run split into `run_to_cycle` segments commits the same
    /// instructions and accumulates the same statistics as an uninterrupted
    /// [`Machine::run`] — fast-forward jumps are capped at the segment
    /// boundary so the stop lands exactly on `stop_at`.
    pub fn run_to_cycle(&mut self, stop_at: u64) -> Result<bool, RunError> {
        self.run_loop(RunCtl {
            stream: None,
            deadline: None,
            stop_at: Some(stop_at),
            observer: None,
        })?;
        Ok(self.cores.iter().all(|c| c.is_done()))
    }

    /// Builds the statistics snapshot at the current cycle. `work_instrs`
    /// is the dynamic instruction count of the original sequential program
    /// (the IPC denominator); the `run*` entry points return this for you,
    /// but a segmented run ([`Machine::run_to_cycle`]) can ask for interim
    /// statistics directly.
    pub fn stats(&self, work_instrs: u64) -> MachineStats {
        let queues = {
            let mut out: [hidisc_ooo::queues::QueueStats; 5] = Default::default();
            for (i, q) in Queue::ALL.into_iter().enumerate() {
                out[i] = *self.queues.stats(q);
            }
            out
        };
        MachineStats {
            model: self.model,
            cycles: self.now,
            work_instrs,
            cores: self.cores.iter().map(|c| (c.name, *c.stats())).collect(),
            mem: self.mem_sys.stats(),
            cmp: self.cmp.as_ref().map(|c| c.stats()),
            queues,
            mem_checksum: self.data.checksum(),
            host_wall_ns: self.host_wall_ns,
            ff_jumps: self.ff_jumps,
            ff_skipped_cycles: self.ff_skipped,
        }
    }

    /// Reads an integer register of core `idx` (result inspection in
    /// tests).
    pub fn core_reg(&self, idx: usize, r: IntReg) -> i64 {
        self.cores[idx].regs.get_i(r)
    }
}

// ------------------------------------------------- snapshots & checkpoints

/// A point-in-time capture of a whole [`Machine`]: cores (RUU, LSQ, fetch
/// queue, rename state, predictor), queues, memory system (caches, MSHRs),
/// CMP threads, architectural memory and statistics.
///
/// Taking one is cheap: the architectural memory is copy-on-write (pages
/// are shared until written), so [`Machine::snapshot`] costs O(dirty
/// pages) pointer copies plus the microarchitectural structures, not a
/// full memory image.
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    state: Machine,
}

/// Magic bytes opening the on-disk checkpoint format.
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"HDCK";
/// Version of the on-disk checkpoint format.
pub const CHECKPOINT_VERSION: u32 = 1;

impl Machine {
    /// Captures the complete machine state. Restoring it with
    /// [`Machine::restore`] and continuing is bit-identical to never having
    /// stopped.
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            state: self.clone(),
        }
    }

    /// Rewinds this machine to a snapshot taken from it (or from an
    /// identically built machine).
    pub fn restore(&mut self, snap: &MachineSnapshot) {
        *self = snap.state.clone();
    }

    /// Serialises the machine's dynamic state (everything a cycle can
    /// change). Static state — programs, configuration, telemetry settings
    /// — is not stored: [`Machine::load_state`] rebuilds those through the
    /// normal construction path and overwrites the dynamic state in place.
    /// Host-side observability (wall-clock time, telemetry buffers) is
    /// excluded, exactly like the `sim_eq` equivalence check.
    pub fn save_state(&self, e: &mut Enc) {
        e.usize(self.cores.len());
        for c in &self.cores {
            c.save_state(e);
        }
        match &self.cmp {
            None => e.bool(false),
            Some(engine) => {
                e.bool(true);
                engine.save_state(e);
            }
        }
        self.queues.save_state(e);
        self.mem_sys.save_state(e);
        self.data.save_state(e);
        e.u64(self.now);
        e.u64(self.ff_jumps);
        e.u64(self.ff_skipped);
    }

    /// Restores dynamic state saved by [`Machine::save_state`] into a
    /// machine built from the same workload and configuration.
    pub fn load_state(&mut self, d: &mut Dec) -> WireResult<()> {
        let n = d.usize()?;
        if n != self.cores.len() {
            return Err(WireError {
                pos: 0,
                what: "core count mismatch",
            });
        }
        for c in &mut self.cores {
            c.load_state(d)?;
        }
        let has_cmp = d.bool()?;
        match (&mut self.cmp, has_cmp) {
            (Some(engine), true) => engine.load_state(d)?,
            (None, false) => {}
            _ => {
                return Err(WireError {
                    pos: 0,
                    what: "cmp presence mismatch",
                })
            }
        }
        self.queues.load_state(d)?;
        self.mem_sys.load_state(d)?;
        self.data.load_state(d)?;
        self.now = d.u64()?;
        self.ff_jumps = d.u64()?;
        self.ff_skipped = d.u64()?;
        Ok(())
    }

    /// Serialises a self-describing disk checkpoint: a header binding the
    /// bytes to this configuration (canonical hash), model and workload
    /// (`workload_id`, caller-chosen — e.g. a hash of the workload name,
    /// scale and seed), followed by [`Machine::save_state`].
    pub fn save_checkpoint(&self, workload_id: u64) -> Vec<u8> {
        self.checkpoint_bound_to(self.cfg.canonical_hash(), workload_id)
    }

    /// Warm-start variant of [`Machine::save_checkpoint`]: the header
    /// binds to [`MachineConfig::warm_hash`] instead of the full canonical
    /// hash, so machines that differ only in their run budgets
    /// (`max_cycles`, `deadlock_cycles`) can restore it.
    pub fn save_warm_checkpoint(&self, workload_id: u64) -> Vec<u8> {
        self.checkpoint_bound_to(self.cfg.warm_hash(), workload_id)
    }

    fn checkpoint_bound_to(&self, cfg_hash: u64, workload_id: u64) -> Vec<u8> {
        let mut e = Enc::new();
        e.bytes(CHECKPOINT_MAGIC);
        e.u32(CHECKPOINT_VERSION);
        e.u64(cfg_hash);
        e.u8(Model::ALL
            .iter()
            .position(|&m| m == self.model)
            .unwrap_or(0) as u8);
        e.u64(workload_id);
        self.save_state(&mut e);
        e.finish()
    }

    /// Restores a checkpoint produced by [`Machine::save_checkpoint`] into
    /// a machine rebuilt from the same workload and configuration. Every
    /// header mismatch (magic, version, config, model, workload) and every
    /// truncated or corrupted payload is a typed error, never a panic.
    pub fn load_checkpoint(&mut self, bytes: &[u8], workload_id: u64) -> WireResult<()> {
        self.load_checkpoint_bound_to(bytes, self.cfg.canonical_hash(), workload_id)
    }

    /// Restores a warm-start checkpoint ([`Machine::save_warm_checkpoint`]):
    /// validation compares [`MachineConfig::warm_hash`], accepting donors
    /// that differ from this machine only in their run budgets.
    pub fn load_warm_checkpoint(&mut self, bytes: &[u8], workload_id: u64) -> WireResult<()> {
        self.load_checkpoint_bound_to(bytes, self.cfg.warm_hash(), workload_id)
    }

    fn load_checkpoint_bound_to(
        &mut self,
        bytes: &[u8],
        cfg_hash: u64,
        workload_id: u64,
    ) -> WireResult<()> {
        let mut d = Dec::new(bytes);
        d.tag(CHECKPOINT_MAGIC, "checkpoint magic mismatch")?;
        if d.u32()? != CHECKPOINT_VERSION {
            return Err(WireError {
                pos: 4,
                what: "checkpoint version mismatch",
            });
        }
        if d.u64()? != cfg_hash {
            return Err(WireError {
                pos: 8,
                what: "checkpoint config mismatch",
            });
        }
        let model_code = Model::ALL
            .iter()
            .position(|&m| m == self.model)
            .unwrap_or(0) as u8;
        if d.u8()? != model_code {
            return Err(WireError {
                pos: 16,
                what: "checkpoint model mismatch",
            });
        }
        if d.u64()? != workload_id {
            return Err(WireError {
                pos: 17,
                what: "checkpoint workload mismatch",
            });
        }
        self.load_state(&mut d)?;
        d.done()
    }

    /// Fingerprint of the machine's *architectural* state: committed
    /// counts, register files and resume pcs of every core, in-flight
    /// queue contents and the data-memory checksum. Timing counters
    /// (stall cycles, cache statistics) are deliberately excluded, so two
    /// configurations diverge in this digest only when their visible
    /// execution state differs — the property `repro bisect` searches on.
    pub fn state_digest(&self) -> u64 {
        let mut e = Enc::new();
        for c in &self.cores {
            e.u64(c.stats().committed);
            e.u32(c.fetch_pc());
            c.regs.save_state(&mut e);
        }
        let mut h = fnv1a(FNV_OFFSET, &e.finish());
        h = self.queues.content_token(h);
        h ^= self.data.checksum();
        h
    }
}

// ---------------------------------------------------- sampled simulation

/// Result of a SMARTS-style sampled run ([`Machine::run_sampled`]):
/// detailed windows measure cycles-per-instruction, functional warm
/// phases execute the instructions in between, and the total cycle count
/// is extrapolated from the measured CPI.
#[derive(Debug, Clone)]
pub struct SampledStats {
    /// Estimated cycle count of a full detailed run: measured CPI times
    /// the (exact) committed instruction count of the pacing core.
    pub est_cycles: u64,
    /// Relative half-width of the 95% confidence interval on `est_cycles`
    /// (`1.96 · sd(CPI) / (mean(CPI) · √n)` over the `n` detailed
    /// windows). Infinite when fewer than two windows completed; zero when
    /// the run finished before the first warm phase (the estimate is then
    /// exact).
    pub rel_error_band: f64,
    /// Detailed measurement windows that contributed to the estimate.
    pub windows: usize,
    /// Measured cycles per pacing-core instruction.
    pub cpi: f64,
    /// Raw statistics of the sampled run itself. `cycles` here counts
    /// machine iterations including functional warm phases — use
    /// `est_cycles` for anything cycle-accurate. Committed instruction
    /// counts and the memory checksum are exact (every instruction
    /// executes).
    pub stats: MachineStats,
}

impl Machine {
    /// Runs the workload in sampling mode: alternate *detailed* windows
    /// (full out-of-order timing, `detail` instructions of the pacing
    /// core) with *functional warm* phases (`skip` instructions executed
    /// in order at dispatch width, with caches, MSHRs, queues, branch
    /// predictor and CMP kept live). Every instruction executes, so
    /// architectural results are exact; cycle counts are estimated from
    /// the detailed windows with a reported confidence band.
    ///
    /// The pacing core is core 0 (the CP in decoupled models). Within each
    /// detailed window the first quarter is treated as pipeline warm-up
    /// and excluded from measurement.
    pub fn run_sampled(
        &mut self,
        work_instrs: u64,
        detail: u64,
        skip: u64,
    ) -> Result<SampledStats, RunError> {
        let detail = detail.max(4);
        let skip = skip.max(1);
        let t0 = Instant::now();
        let mut triggers: Vec<TriggerFork> = Vec::new();
        let mut idle = 0u64;
        let mut last_committed: u64 = self.cores.iter().map(|c| c.stats().committed).sum();
        let mut window_cpis: Vec<f64> = Vec::new();
        let mut meas_cycles = 0u64;
        let mut meas_commits = 0u64;
        let mut warm_phases = 0usize;

        fn pacing(m: &Machine) -> u64 {
            m.cores[0].stats().committed
        }
        fn running(m: &Machine) -> bool {
            m.cores.iter().any(|c| !c.is_done())
        }

        while running(self) {
            // Detailed window: full timing until the pacing core commits
            // `detail` instructions. Skip the first quarter (pipeline
            // refill after the warm phase) before measuring.
            let w_start = pacing(self);
            let mut meas: Option<(u64, u64)> = None;
            let mut completed = false;
            while running(self) {
                self.step_cycle(&mut triggers)?;
                self.now += 1;
                self.tick_watchdog(&mut idle, &mut last_committed)?;
                let c = pacing(self);
                if meas.is_none() && c >= w_start + detail / 4 {
                    meas = Some((self.now, c));
                }
                if c >= w_start + detail {
                    completed = true;
                    break;
                }
            }
            // A window cut short by program termination measures the
            // end-of-run drain (cycles advance, the pacing core does not)
            // rather than steady-state CPI — discard it.
            if !completed {
                meas = None;
            }
            if let Some((n0, c0)) = meas {
                let (dc, di) = (self.now - n0, pacing(self) - c0);
                if dc > 0 && di > 0 {
                    window_cpis.push(dc as f64 / di as f64);
                    meas_cycles += dc;
                    meas_commits += di;
                }
            }
            if !running(self) {
                break;
            }

            // Drain: pause fetch and keep stepping until each core's
            // pipeline empties; drained cores enter the warm phase at once
            // (and keep feeding the queues) so a core whose drain depends
            // on another stream cannot deadlock.
            for c in &mut self.cores {
                c.set_fetch_paused(true);
            }
            loop {
                let mut all_warm = true;
                for c in &mut self.cores {
                    if !c.try_enter_warm() {
                        all_warm = false;
                    }
                }
                if all_warm || !running(self) {
                    break;
                }
                self.step_cycle(&mut triggers)?;
                self.now += 1;
                self.tick_watchdog(&mut idle, &mut last_committed)?;
            }

            // Warm phase: functional in-order execution for `skip` pacing
            // instructions. The CMP still steps normally.
            warm_phases += 1;
            let w_end = pacing(self) + skip;
            while running(self) && pacing(self) < w_end {
                self.step_cycle(&mut triggers)?;
                self.now += 1;
                self.tick_watchdog(&mut idle, &mut last_committed)?;
            }
            for c in &mut self.cores {
                c.exit_warm();
                c.set_fetch_paused(false);
            }
        }
        self.host_wall_ns += t0.elapsed().as_nanos() as u64;

        let stats = self.stats(work_instrs);
        if warm_phases == 0 || meas_commits == 0 {
            // The whole run was detailed: the cycle count is exact.
            return Ok(SampledStats {
                est_cycles: stats.cycles,
                rel_error_band: 0.0,
                windows: window_cpis.len(),
                cpi: if pacing(self) > 0 {
                    stats.cycles as f64 / pacing(self) as f64
                } else {
                    0.0
                },
                stats,
            });
        }
        let cpi = meas_cycles as f64 / meas_commits as f64;
        let est_cycles = (cpi * pacing(self) as f64).round() as u64;
        let n = window_cpis.len();
        let rel_error_band = if n >= 2 {
            let mean = window_cpis.iter().sum::<f64>() / n as f64;
            let var = window_cpis.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            1.96 * var.sqrt() / (mean * (n as f64).sqrt())
        } else {
            f64::INFINITY
        };
        Ok(SampledStats {
            est_cycles,
            rel_error_band,
            windows: n,
            cpi,
            stats,
        })
    }
}

/// Convenience wrapper: build + run one model.
pub fn run_model(
    model: Model,
    w: &CompiledWorkload,
    env: &ExecEnv,
    cfg: MachineConfig,
) -> Result<MachineStats, RunError> {
    let mut m = Machine::new(model, w, env, cfg);
    m.run(w.profile.dyn_instrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::asm::assemble;
    use hidisc_isa::interp::Interp;
    use hidisc_slicer::{compile, CompilerConfig};

    /// A pointer-free strided kernel: loads, computes, stores.
    const KERNEL: &str = r"
            li r1, 0x100000
            li r2, 256
        loop:
            ld r3, 0(r1)
            add r4, r3, 5
            sd r4, 0x80000(r1)
            add r1, r1, 64
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ";

    fn compiled() -> (CompiledWorkload, ExecEnv) {
        let p = assemble("k", KERNEL).unwrap();
        let mut mem = Memory::new();
        for i in 0..4096u64 {
            mem.write_i64(0x100000 + i * 8, i as i64).unwrap();
        }
        let env = ExecEnv {
            regs: vec![],
            mem,
            max_steps: 10_000_000,
        };
        let w = compile(&p, &env, &CompilerConfig::default()).unwrap();
        (w, env)
    }

    fn golden(env: &ExecEnv) -> u64 {
        let p = assemble("k", KERNEL).unwrap();
        let mut i = Interp::new(&p, env.mem.clone());
        i.run(10_000_000).unwrap();
        i.mem.checksum()
    }

    #[test]
    fn all_models_produce_identical_memory() {
        let (w, env) = compiled();
        let want = golden(&env);
        for model in Model::ALL {
            let stats = run_model(model, &w, &env, MachineConfig::paper()).unwrap();
            assert_eq!(stats.mem_checksum, want, "model {model} diverged");
            assert!(stats.cycles > 0);
            assert_eq!(stats.work_instrs, w.profile.dyn_instrs);
        }
    }

    #[test]
    fn cmp_models_reduce_misses_on_strided_kernel() {
        let (w, env) = compiled();
        let base = run_model(Model::Superscalar, &w, &env, MachineConfig::paper()).unwrap();
        let hidisc = run_model(Model::HiDisc, &w, &env, MachineConfig::paper()).unwrap();
        assert!(
            hidisc.l1_miss_rate() < base.l1_miss_rate(),
            "HiDISC {:.3} vs base {:.3}",
            hidisc.l1_miss_rate(),
            base.l1_miss_rate()
        );
        let cmp = hidisc.cmp.unwrap();
        assert!(cmp.forks >= 1);
        assert!(cmp.prefetches > 0);
    }

    #[test]
    fn hidisc_not_slower_than_baseline_here() {
        let (w, env) = compiled();
        let base = run_model(Model::Superscalar, &w, &env, MachineConfig::paper()).unwrap();
        let hidisc = run_model(Model::HiDisc, &w, &env, MachineConfig::paper()).unwrap();
        let s = hidisc.speedup_over(&base);
        assert!(s > 0.9, "speedup {s:.3}");
    }

    #[test]
    fn decoupled_queues_carry_traffic() {
        let (w, env) = compiled();
        let st = run_model(Model::CpAp, &w, &env, MachineConfig::paper()).unwrap();
        // LDQ and CQ must both have flowed.
        assert!(st.queues[0].pushes > 0, "LDQ unused");
        assert!(st.queues[3].pushes > 0, "CQ unused");
        // pushes == pops at termination for matched streams
        assert_eq!(st.queues[0].pushes, st.queues[0].pops);
        assert_eq!(st.queues[3].pushes, st.queues[3].pops);
    }

    #[test]
    fn latency_sweep_hurts_baseline_more() {
        let (w, env) = compiled();
        let base_fast = run_model(
            Model::Superscalar,
            &w,
            &env,
            MachineConfig::paper_with_latency(4, 40),
        )
        .unwrap();
        let base_slow = run_model(
            Model::Superscalar,
            &w,
            &env,
            MachineConfig::paper_with_latency(16, 160),
        )
        .unwrap();
        let hd_fast = run_model(
            Model::HiDisc,
            &w,
            &env,
            MachineConfig::paper_with_latency(4, 40),
        )
        .unwrap();
        let hd_slow = run_model(
            Model::HiDisc,
            &w,
            &env,
            MachineConfig::paper_with_latency(16, 160),
        )
        .unwrap();
        let base_loss = base_fast.ipc() / base_slow.ipc();
        let hd_loss = hd_fast.ipc() / hd_slow.ipc();
        assert!(
            hd_loss < base_loss,
            "HiDISC should tolerate latency better: hd {hd_loss:.3} vs base {base_loss:.3}"
        );
    }
}

impl Machine {
    /// Captures pipeline snapshots of every core (for traces).
    pub fn snapshots(&self) -> Vec<hidisc_ooo::core::PipelineSnapshot> {
        self.cores.iter().map(|c| c.snapshot()).collect()
    }

    /// Live CMP thread count, if this model has a CMP.
    pub fn cmp_threads(&self) -> Option<usize> {
        self.cmp.as_ref().map(|c| c.live_threads())
    }

    /// Runs like [`Machine::run`] but invokes the [`Observer`] after every
    /// cycle until it breaks (observation stops; simulation continues).
    pub fn run_observed(
        &mut self,
        work_instrs: u64,
        mut observer: impl Observer,
    ) -> Result<MachineStats, RunError> {
        self.run_loop(RunCtl {
            stream: None,
            deadline: None,
            stop_at: None,
            observer: Some(&mut observer),
        })?;
        Ok(self.stats(work_instrs))
    }
}

#[cfg(test)]
mod observer_tests {
    use super::*;
    use hidisc_isa::asm::assemble;
    use hidisc_slicer::{compile, CompilerConfig};

    #[test]
    fn observer_sees_every_cycle_until_it_stops() {
        let p = assemble(
            "t",
            "li r1, 0x1000\nli r2, 32\nloop:\nld r3, 0(r1)\nadd r1, r1, 8\nsub r2, r2, 1\nbne r2, r0, loop\nhalt",
        )
        .unwrap();
        let env = ExecEnv {
            regs: vec![],
            mem: Memory::new(),
            max_steps: 100_000,
        };
        let w = compile(&p, &env, &CompilerConfig::default()).unwrap();
        let mut m = Machine::new(Model::HiDisc, &w, &env, MachineConfig::paper());
        let mut observed = 0u64;
        let st = m
            .run_observed(w.profile.dyn_instrs, |mach: &Machine| {
                observed += 1;
                assert_eq!(mach.now(), observed);
                assert_eq!(mach.snapshots().len(), 2); // CP + AP
                observed < 50 // stop observing after 50 cycles
            })
            .unwrap();
        assert_eq!(observed, 50.min(st.cycles));
        assert!(st.cycles > 0);
    }

    #[test]
    fn observed_run_matches_plain_run() {
        let p = assemble(
            "t",
            "li r1, 0x1000\nli r2, 16\nloop:\nld r3, 0(r1)\nsd r3, 0x100(r1)\nadd r1, r1, 8\nsub r2, r2, 1\nbne r2, r0, loop\nhalt",
        )
        .unwrap();
        let env = ExecEnv {
            regs: vec![],
            mem: Memory::new(),
            max_steps: 100_000,
        };
        let w = compile(&p, &env, &CompilerConfig::default()).unwrap();
        let a = Machine::new(Model::HiDisc, &w, &env, MachineConfig::paper())
            .run(w.profile.dyn_instrs)
            .unwrap();
        let b = Machine::new(Model::HiDisc, &w, &env, MachineConfig::paper())
            .run_observed(w.profile.dyn_instrs, |_: &Machine| true)
            .unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.mem_checksum, b.mem_checksum);
    }
}
