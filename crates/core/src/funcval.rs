//! Functional validation of stream separation.
//!
//! Runs the Computation and Access streams concurrently at the
//! architectural level (no timing, unbounded queues) and checks they
//! reproduce the sequential program's memory state. This isolates slicer
//! bugs from timing-model bugs and is fast enough for property tests.

use hidisc_isa::interp::{PopResult, PushResult, QueueEnv, RegFile, Step};
use hidisc_isa::mem::Memory;
use hidisc_isa::{IntReg, IsaError, Program, Queue, Result};
use std::collections::VecDeque;

/// Unbounded queues: pushes always succeed, pops block on empty (except
/// the SCQ, whose `getscq` is non-blocking by architecture).
#[derive(Debug, Default)]
pub struct UnboundedQueues {
    q: [VecDeque<u64>; 5],
}

fn qi(q: Queue) -> usize {
    match q {
        Queue::Ldq => 0,
        Queue::Sdq => 1,
        Queue::Cdq => 2,
        Queue::Cq => 3,
        Queue::Scq => 4,
    }
}

impl QueueEnv for UnboundedQueues {
    fn pop(&mut self, q: Queue) -> Result<PopResult> {
        match self.q[qi(q)].pop_front() {
            Some(v) => Ok(PopResult::Value(v)),
            None if q == Queue::Scq => Ok(PopResult::Value(0)),
            None => Ok(PopResult::Blocked),
        }
    }
    fn push(&mut self, q: Queue, v: u64) -> Result<PushResult> {
        self.q[qi(q)].push_back(v);
        Ok(PushResult::Done)
    }
}

impl UnboundedQueues {
    /// Occupancy of one queue.
    pub fn len(&self, q: Queue) -> usize {
        self.q[qi(q)].len()
    }

    /// True when all data queues are drained (SCQ may legitimately retain
    /// slip tokens).
    pub fn drained(&self) -> bool {
        [Queue::Ldq, Queue::Sdq, Queue::Cdq, Queue::Cq]
            .into_iter()
            .all(|q| self.q[qi(q)].is_empty())
    }
}

/// Outcome of a decoupled functional run.
#[derive(Debug)]
pub struct DecoupledRun {
    /// Final memory (all memory traffic goes through the Access Stream).
    pub mem: Memory,
    /// Final CP register file.
    pub cp_regs: RegFile,
    /// Final AP register file.
    pub ap_regs: RegFile,
    /// Steps executed by the CP.
    pub cp_steps: u64,
    /// Steps executed by the AP.
    pub ap_steps: u64,
    /// Residual queue state.
    pub queues: UnboundedQueues,
}

struct StreamCtx<'a> {
    prog: &'a Program,
    pc: u32,
    regs: RegFile,
    halted: bool,
    steps: u64,
}

impl<'a> StreamCtx<'a> {
    fn new(prog: &'a Program, init: &[(IntReg, i64)]) -> StreamCtx<'a> {
        let mut regs = RegFile::new();
        for &(r, v) in init {
            regs.set_i(r, v);
        }
        StreamCtx {
            prog,
            pc: 0,
            regs,
            halted: false,
            steps: 0,
        }
    }
}

/// Runs the CS/AS pair functionally. Returns an error on deadlock (both
/// streams blocked) or when `max_steps` total steps are exceeded.
pub fn run_decoupled(
    cs: &Program,
    access: &Program,
    init: &[(IntReg, i64)],
    mem: Memory,
    max_steps: u64,
) -> Result<DecoupledRun> {
    let mut mem = mem;
    let mut env = UnboundedQueues::default();
    let mut cp = StreamCtx::new(cs, init);
    let mut ap = StreamCtx::new(access, init);
    let mut hook = |_e| {};

    let mut total = 0u64;
    loop {
        let mut progressed = false;
        // Let each stream run until it blocks (bounded per round so a
        // runaway loop still hits max_steps).
        for s in [&mut ap, &mut cp] {
            let mut burst = 0;
            while !s.halted && burst < 50_000 {
                match hidisc_isa::interp::step_at(
                    s.prog,
                    s.pc,
                    &mut s.regs,
                    &mut mem,
                    &mut env,
                    &mut hook,
                )? {
                    Step::Next(n) => {
                        s.pc = n;
                        s.steps += 1;
                        total += 1;
                        progressed = true;
                        burst += 1;
                    }
                    Step::Halt => {
                        s.halted = true;
                        s.steps += 1;
                        total += 1;
                        progressed = true;
                    }
                    Step::Blocked => break,
                }
                if total > max_steps {
                    return Err(IsaError::Exec {
                        pc: s.pc,
                        msg: format!("decoupled run exceeded {max_steps} steps"),
                    });
                }
            }
        }
        if cp.halted && ap.halted {
            break;
        }
        if !progressed {
            return Err(IsaError::Exec {
                pc: cp.pc,
                msg: format!(
                    "decoupled deadlock: CP blocked at {} ({}), AP blocked at {} ({})",
                    cp.pc,
                    hidisc_isa::encode::render_instr(cs.instr(cp.pc.min(cs.len() - 1)), cs),
                    ap.pc,
                    hidisc_isa::encode::render_instr(
                        access.instr(ap.pc.min(access.len() - 1)),
                        access
                    ),
                ),
            });
        }
    }

    Ok(DecoupledRun {
        mem,
        cp_regs: cp.regs,
        ap_regs: ap.regs,
        cp_steps: cp.steps,
        ap_steps: ap.steps,
        queues: env,
    })
}

/// Compiles nothing — validates an already-compiled workload: the
/// decoupled functional run must reproduce the sequential memory image.
pub fn validate(w: &hidisc_slicer::CompiledWorkload, env: &hidisc_slicer::ExecEnv) -> Result<()> {
    // Sequential golden run.
    let mut seq = hidisc_isa::interp::Interp::new(&w.original, env.mem.clone());
    for &(r, v) in &env.regs {
        seq.set_reg(r, v);
    }
    let max = if env.max_steps == 0 {
        u64::MAX
    } else {
        env.max_steps
    };
    seq.run(max)?;

    // Decoupled run.
    let d = run_decoupled(
        &w.cs,
        &w.access,
        &env.regs,
        env.mem.clone(),
        max.saturating_mul(4),
    )?;

    if d.mem.checksum() != seq.mem.checksum() {
        return Err(IsaError::Exec {
            pc: 0,
            msg: format!(
                "decoupled memory state diverged from sequential (workload {})",
                w.original.name
            ),
        });
    }
    if !d.queues.drained() {
        return Err(IsaError::Exec {
            pc: 0,
            msg: "data queues not drained at end of decoupled run".into(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::asm::assemble;
    use hidisc_slicer::{compile, CompilerConfig, ExecEnv};

    fn check(src: &str, mem_init: &[(u64, i64)]) {
        let p = assemble("v", src).unwrap();
        let mut mem = Memory::new();
        for &(a, v) in mem_init {
            mem.write_i64(a, v).unwrap();
        }
        let env = ExecEnv {
            regs: vec![],
            mem,
            max_steps: 10_000_000,
        };
        let w = compile(&p, &env, &CompilerConfig::default()).unwrap();
        validate(&w, &env).unwrap();
    }

    #[test]
    fn load_compute_store_kernel() {
        check(
            r"
            li r1, 0x1000
            li r2, 16
        loop:
            ld r3, 0(r1)
            add r4, r3, 7
            sd r4, 0x100(r1)
            add r1, r1, 8
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ",
            &[(0x1000, 5), (0x1008, 9)],
        );
    }

    #[test]
    fn fp_reduction_via_queues() {
        check(
            r"
            li r1, 0x1000
            li r2, 8
        loop:
            l.d f1, 0(r1)
            add.d f2, f2, f1
            add r1, r1, 8
            sub r2, r2, 1
            bne r2, r0, loop
            s.d f2, 0x2000(r0)
            halt
        ",
            &[(0x1000, 0), (0x1008, 0)],
        );
    }

    #[test]
    fn branchy_control_flow() {
        check(
            r"
            li r1, 0x1000
            li r2, 32
            li r5, 0
        loop:
            ld r3, 0(r1)
            rem r4, r3, 2
            beq r4, r0, even
            add r5, r5, r3
            j next
        even:
            sub r5, r5, r3
        next:
            add r1, r1, 8
            sub r2, r2, 1
            bne r2, r0, loop
            sd r5, 0x3000(r0)
            halt
        ",
            &[(0x1000, 3), (0x1008, 4), (0x1010, 5)],
        );
    }

    #[test]
    fn pointer_chase_with_store() {
        check(
            r"
            li r1, 0x1000
            li r2, 3
        loop:
            ld r3, 8(r1)      ; payload
            add r4, r3, 1
            sd r4, 8(r1)      ; update payload
            ld r1, 0(r1)      ; follow pointer
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ",
            &[
                (0x1000, 0x2000),
                (0x1008, 10),
                (0x2000, 0x3000),
                (0x2008, 20),
                (0x3000, 0x1000),
                (0x3008, 30),
            ],
        );
    }

    #[test]
    fn fp_derived_address_via_cdq() {
        check(
            r"
            li r1, 3
            cvt.d.l f1, r1
            mul.d f2, f1, f1
            cvt.l.d r2, f2
            sll r3, r2, 3
            ld r4, 0x1000(r3)
            sd r4, 0x2000(r0)
            halt
        ",
            &[(0x1000 + 9 * 8, 42)],
        );
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        // Hand-build a mis-matched pair: CP pops LDQ that nobody pushes.
        let cs = assemble("cs", "recv r1, LDQ\nhalt").unwrap();
        let access = assemble("as", "halt").unwrap();
        let err = run_decoupled(&cs, &access, &[], Memory::new(), 100_000).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("deadlock"), "{msg}");
    }
}
