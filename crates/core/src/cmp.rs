//! The Cache Management Processor: an in-order, multithreaded prefetch
//! engine.
//!
//! The CMP executes Cache Miss Access Slices forked from the Access
//! Processor. It is deliberately lightweight (Table 1 gives it integer and
//! load/store units only): each cycle it issues at most one instruction
//! from each of up to `issue_width` ready threads, round-robin. Its loads
//! return real data (pointer chases need the loaded value) but are tagged
//! as *prefetch* accesses in the cache model — they fill lines without
//! counting as demand traffic, and the architectural state of the machine
//! is never affected ("it only updates the cache status").
//!
//! Run-ahead is bounded by the Slip Control Queue: `putscq` blocks a
//! thread when the semaphore is full, and the AP's latch branches drain it
//! as they commit.

use crate::dynamic::{DynamicConfig, SliceFilter, SlipController};
use hidisc_isa::instr::Src;
use hidisc_isa::interp::RegFile;
use hidisc_isa::wire::{Dec, Enc, WireError, WireResult};
use hidisc_isa::{Instr, IsaError, Program, Queue, Result};
use hidisc_mem::AccessKind;
use hidisc_ooo::{CoreCtx, TriggerFork};
use hidisc_telemetry::{Category, EventData, Telemetry};

/// Instructions one thread may execute in a single warm-phase iteration.
/// Warm mode drains each thread until it blocks or completes (see
/// `CmpEngine::warm_step`); this cap only bounds a hypothetical
/// non-terminating slice, it is never reached by compiler-produced CMAS.
const WARM_BURST: u32 = 4096;

/// CMP configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmpConfig {
    /// Maximum live thread contexts; a fork beyond this evicts the oldest
    /// thread of the same slice (fresher context wins) or is dropped.
    pub max_threads: usize,
    /// Total instructions the engine may execute per cycle across all
    /// threads (Table 1 gives the CMP four integer ALUs).
    pub issue_width: u32,
    /// Consecutive single-cycle instructions one thread may chain within a
    /// cycle (in-order run-ahead burst).
    pub thread_width: u32,
    /// Memory accesses the CMP may start per cycle.
    pub mem_ports: u32,
    /// Integer-op latency.
    pub int_latency: u32,
    /// Next-line assist (extension, off by default): when a CMP *load*
    /// misses, also prefetch the following cache line. Sequential slice
    /// inputs (index streams) otherwise serialise the engine on their own
    /// cold misses.
    pub next_line_assist: bool,
    /// The paper's future-work extensions: runtime prefetch-distance
    /// control and selective triggering (both off by default).
    pub dynamic: DynamicConfig,
}

impl Default for CmpConfig {
    fn default() -> Self {
        CmpConfig {
            max_threads: 8,
            issue_width: 4,
            thread_width: 4,
            mem_ports: 1,
            int_latency: 1,
            next_line_assist: false,
            dynamic: DynamicConfig::default(),
        }
    }
}

/// CMP statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CmpStats {
    /// Threads forked from trigger commits.
    pub forks: u64,
    /// Forks dropped because all contexts were busy.
    pub dropped_forks: u64,
    /// Instructions executed.
    pub instrs: u64,
    /// Prefetch requests issued to the memory system (loads + `pref`).
    pub prefetches: u64,
    /// Prefetches dropped on MSHR exhaustion.
    pub dropped_prefetches: u64,
    /// Cycles threads spent blocked on a full SCQ (run-ahead throttling).
    pub scq_block_cycles: u64,
    /// Threads that ran to completion.
    pub completed_threads: u64,
    /// Forks suppressed by the selective-trigger filter.
    pub suppressed_forks: u64,
    /// Adaptation steps taken by the slip controller.
    pub slip_adaptations: u64,
}

impl CmpStats {
    /// Field-wise difference `self - before` of two snapshots of the same
    /// growing counters (exhaustive so new fields must be classified).
    pub fn delta_since(&self, before: &CmpStats) -> CmpStats {
        let CmpStats {
            forks,
            dropped_forks,
            instrs,
            prefetches,
            dropped_prefetches,
            scq_block_cycles,
            completed_threads,
            suppressed_forks,
            slip_adaptations,
        } = *before;
        CmpStats {
            forks: self.forks - forks,
            dropped_forks: self.dropped_forks - dropped_forks,
            instrs: self.instrs - instrs,
            prefetches: self.prefetches - prefetches,
            dropped_prefetches: self.dropped_prefetches - dropped_prefetches,
            scq_block_cycles: self.scq_block_cycles - scq_block_cycles,
            completed_threads: self.completed_threads - completed_threads,
            suppressed_forks: self.suppressed_forks - suppressed_forks,
            slip_adaptations: self.slip_adaptations - slip_adaptations,
        }
    }
}

#[derive(Debug, Clone)]
struct CmpThread {
    prog: usize,
    pc: u32,
    regs: RegFile,
    busy_until: u64,
}

/// The CMP engine.
#[derive(Debug, Clone)]
pub struct CmpEngine {
    cfg: CmpConfig,
    /// CMAS thread programs, indexed by trigger id.
    programs: Vec<Program>,
    threads: Vec<CmpThread>,
    rr: usize,
    stats: CmpStats,
    slip: SlipController,
    filter: SliceFilter,
}

impl CmpEngine {
    /// Creates an engine over the workload's CMAS programs.
    pub fn new(cfg: CmpConfig, programs: Vec<Program>) -> CmpEngine {
        let slip = SlipController::new(cfg.dynamic);
        let filter = SliceFilter::new(cfg.dynamic, programs.len());
        CmpEngine {
            cfg,
            programs,
            threads: Vec::new(),
            rr: 0,
            stats: CmpStats::default(),
            slip,
            filter,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CmpStats {
        CmpStats {
            suppressed_forks: self.filter.suppressed_forks,
            slip_adaptations: self.slip.adaptations,
            ..self.stats
        }
    }

    /// Current slip bound (tokens) — `usize::MAX` when static.
    pub fn slip_limit(&self) -> usize {
        self.slip.limit()
    }

    /// Number of live threads.
    pub fn live_threads(&self) -> usize {
        self.threads.len()
    }

    /// The earliest cycle strictly after `now` at which a thread blocked on
    /// a long-latency operation becomes ready again. `None` when no thread
    /// holds a pending wake-up time — threads are then either ready (and
    /// stuck on a shared resource: SCQ, MSHRs, memory ports) or absent.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        self.threads
            .iter()
            .map(|t| t.busy_until)
            .filter(|&t| t > now)
            .min()
    }

    /// Structural-progress fingerprint (see `hidisc::Machine`). Thread pcs
    /// and registers can only change when an instruction executes
    /// (`instrs`), and the thread set only changes through forks,
    /// evictions and completions — all counted. `scq_block_cycles` and the
    /// round-robin pointer are excluded: both move on cycles where every
    /// thread is blocked.
    pub fn progress_token(&self) -> u64 {
        use hidisc_ooo::queues::token_mix as mix;
        let mut h = mix(0, self.stats.instrs);
        h = mix(h, self.stats.forks);
        h = mix(h, self.stats.dropped_forks);
        h = mix(h, self.stats.completed_threads);
        h = mix(h, self.threads.len() as u64);
        h
    }

    /// Applies `k` skipped idle cycles: replays the per-cycle statistics
    /// delta and rotates the round-robin pointer exactly as `k` blocked
    /// `step` calls would have.
    pub fn add_idle_cycles(&mut self, delta: &CmpStats, k: u64) {
        let CmpStats {
            forks,
            dropped_forks,
            instrs,
            prefetches,
            dropped_prefetches,
            scq_block_cycles,
            completed_threads,
            suppressed_forks,
            slip_adaptations,
        } = *delta;
        debug_assert_eq!(
            (
                forks,
                dropped_forks,
                instrs,
                prefetches,
                dropped_prefetches,
                completed_threads,
                suppressed_forks,
                slip_adaptations
            ),
            (0, 0, 0, 0, 0, 0, 0, 0),
            "fast-forward applied a non-idle CmpStats delta"
        );
        self.stats.scq_block_cycles += scq_block_cycles * k;
        // `step` rotates the round-robin start once per cycle whenever any
        // thread is live, even if nothing issues.
        let n = self.threads.len() as u64;
        if n > 0 {
            self.rr = ((self.rr as u64 + k) % n) as usize;
        }
    }

    /// Forks a CMAS thread from a trigger commit on the AP.
    pub fn fork(&mut self, t: TriggerFork, trace: &mut Telemetry) {
        if (t.cmas as usize) >= self.programs.len() {
            return; // stale trigger id (defensive)
        }
        if !self.filter.allow(t.cmas as usize) {
            return; // selective triggering: history says not worth it
        }
        if self.threads.len() >= self.cfg.max_threads {
            // Prefer the fresher context: evict the oldest thread running
            // the same slice, else drop the fork.
            match self
                .threads
                .iter()
                .position(|th| th.prog == t.cmas as usize)
            {
                Some(old) => {
                    self.threads.remove(old);
                    self.stats.dropped_forks += 1;
                }
                None => {
                    self.stats.dropped_forks += 1;
                    return;
                }
            }
        }
        self.stats.forks += 1;
        self.threads.push(CmpThread {
            prog: t.cmas as usize,
            pc: 0,
            regs: t.regs,
            busy_until: 0,
        });
        if trace.on(Category::Cmp) {
            trace.emit(EventData::CmpSpawn {
                cmas: t.cmas,
                live: self.threads.len() as u32,
            });
        }
    }

    /// Advances the engine one cycle.
    pub fn step(&mut self, now: u64, ctx: &mut CoreCtx<'_>) -> Result<()> {
        self.step_impl(now, ctx, false)
    }

    /// Functional variant for sampled simulation's warm phases: the same
    /// interpreter with timing idealised away — threads never wait on
    /// `busy_until`, and memory traffic goes through the latency-free
    /// [`MemSystem::warm_access`] path (no MSHR occupancy, no rejects) so
    /// the engine keeps pace with warm-mode cores committing many
    /// instructions per machine iteration. The SCQ run-ahead discipline
    /// still applies — it bounds architectural queue state, not timing.
    pub fn warm_step(&mut self, now: u64, ctx: &mut CoreCtx<'_>) -> Result<()> {
        self.step_impl(now, ctx, true)
    }

    fn step_impl(&mut self, now: u64, ctx: &mut CoreCtx<'_>, warm: bool) -> Result<()> {
        if self.threads.is_empty() {
            return Ok(());
        }
        let mut issued = 0u32;
        let mut mem_issued = 0u32;
        let mut finished: Vec<usize> = Vec::new();
        let n = self.threads.len();
        // Round-robin starting point rotates for fairness.
        self.rr = if n == 0 { 0 } else { (self.rr + 1) % n };

        // Warm iterations lift the per-cycle structural limits: warm cores
        // commit up to a full dispatch width of work per iteration (many
        // times the steady-state IPC), so an engine still paced at
        // `issue_width` per iteration starves — contexts fill, trigger
        // forks drop, and the detailed windows that follow measure a
        // machine whose assist threads are missing. Each thread instead
        // drains until it completes or hits the SCQ run-ahead bound, which
        // is the architectural throttle and applies in both modes. The
        // burst cap only guards against a non-terminating slice.
        let issue_cap = if warm { u32::MAX } else { self.cfg.issue_width };
        let mem_cap = if warm { u32::MAX } else { self.cfg.mem_ports };
        let burst = if warm {
            WARM_BURST
        } else {
            self.cfg.thread_width
        };

        'threads: for k in 0..n {
            if issued >= issue_cap {
                break;
            }
            let ti = (self.rr + k) % n;
            // Burst: chain up to `thread_width` ready instructions of this
            // thread within the cycle.
            for _ in 0..burst {
                if issued >= issue_cap {
                    break 'threads;
                }
                let th = &mut self.threads[ti];
                if !warm && th.busy_until > now {
                    break;
                }
                let prog = &self.programs[th.prog];
                let Some(&instr) = prog.get(th.pc) else {
                    finished.push(ti);
                    break;
                };

                match instr {
                    Instr::IntOp { op, dst, a, b } => {
                        let bv = match b {
                            Src::Reg(r) => th.regs.get_i(r),
                            Src::Imm(v) => v,
                        };
                        let v = op.eval(th.regs.get_i(a), bv);
                        th.regs.set_i(dst, v);
                        th.pc += 1;
                        if self.cfg.int_latency > 1 {
                            th.busy_until = now + self.cfg.int_latency as u64;
                        }
                    }
                    Instr::Li { dst, imm } => {
                        th.regs.set_i(dst, imm);
                        th.pc += 1;
                    }
                    Instr::Load {
                        dst,
                        base,
                        off,
                        width,
                        signed,
                    } => {
                        if mem_issued >= mem_cap {
                            break;
                        }
                        let addr = (th.regs.get_i(base) as u64).wrapping_add_signed(off as i64);
                        if warm {
                            let l1_hit = ctx.mem_sys.warm_access(addr, AccessKind::Prefetch);
                            mem_issued += 1;
                            self.stats.prefetches += 1;
                            self.filter.record(th.prog, !l1_hit);
                            self.slip.on_prefetch(&ctx.mem_sys.stats());
                            let v = ctx.data.load(addr, width, signed)?;
                            th.regs.set_i(dst, v);
                            th.pc += 1;
                            if self.cfg.next_line_assist && !l1_hit {
                                let blk = ctx.mem_sys.config().l1.block_bytes as u64;
                                ctx.mem_sys.warm_access(addr + blk, AccessKind::Prefetch);
                                self.stats.prefetches += 1;
                            }
                            self.stats.instrs += 1;
                            issued += 1;
                            continue;
                        }
                        match ctx
                            .mem_sys
                            .access_traced(addr, AccessKind::Prefetch, now, ctx.trace)
                        {
                            Some(r) => {
                                mem_issued += 1;
                                self.stats.prefetches += 1;
                                self.filter.record(th.prog, !r.l1_hit);
                                self.slip.on_prefetch(&ctx.mem_sys.stats());
                                // The value is needed (pointer chase): the
                                // thread waits for the fill.
                                let v = ctx.data.load(addr, width, signed)?;
                                th.regs.set_i(dst, v);
                                th.pc += 1;
                                th.busy_until = r.complete_at;
                                if self.cfg.next_line_assist && !r.l1_hit {
                                    // Port-free tag-side hint, bounded only
                                    // by MSHR availability: sequential
                                    // slice inputs (index streams) would
                                    // otherwise serialise the engine on
                                    // their own cold misses.
                                    let blk = ctx.mem_sys.config().l1.block_bytes as u64;
                                    if ctx
                                        .mem_sys
                                        .access_traced(
                                            addr + blk,
                                            AccessKind::Prefetch,
                                            now,
                                            ctx.trace,
                                        )
                                        .is_some()
                                    {
                                        self.stats.prefetches += 1;
                                    }
                                }
                            }
                            None => break, // MSHRs full: retry next cycle
                        }
                    }
                    Instr::Prefetch { base, off } => {
                        if mem_issued >= mem_cap {
                            break;
                        }
                        let addr = (th.regs.get_i(base) as u64).wrapping_add_signed(off as i64);
                        if warm {
                            let l1_hit = ctx.mem_sys.warm_access(addr, AccessKind::Prefetch);
                            mem_issued += 1;
                            self.stats.prefetches += 1;
                            self.filter.record(th.prog, !l1_hit);
                            self.slip.on_prefetch(&ctx.mem_sys.stats());
                            th.pc += 1;
                            self.stats.instrs += 1;
                            issued += 1;
                            continue;
                        }
                        match ctx
                            .mem_sys
                            .access_traced(addr, AccessKind::Prefetch, now, ctx.trace)
                        {
                            Some(r) => {
                                mem_issued += 1;
                                self.stats.prefetches += 1;
                                self.filter.record(th.prog, !r.l1_hit);
                                self.slip.on_prefetch(&ctx.mem_sys.stats());
                            }
                            None => {
                                self.stats.dropped_prefetches += 1;
                            }
                        }
                        // Fire and forget either way.
                        th.pc += 1;
                    }
                    Instr::PutScq => {
                        let within_dynamic_bound = ctx.queues.len(Queue::Scq) < self.slip.limit();
                        if within_dynamic_bound && ctx.push_queue(Queue::Scq, 1) {
                            th.pc += 1;
                        } else {
                            // Run-ahead bound reached: block this thread.
                            self.stats.scq_block_cycles += 1;
                            break;
                        }
                    }
                    Instr::Branch { cond, a, b, target } => {
                        let taken = cond.eval(th.regs.get_i(a), th.regs.get_i(b));
                        th.pc = if taken { target } else { th.pc + 1 };
                    }
                    Instr::Jump { target } => {
                        th.pc = target;
                    }
                    Instr::Halt => {
                        finished.push(ti);
                        break;
                    }
                    Instr::Nop => {
                        th.pc += 1;
                    }
                    other => {
                        return Err(IsaError::Exec {
                            pc: th.pc,
                            msg: format!("illegal CMAS instruction on CMP: {other:?}"),
                        })
                    }
                }
                self.stats.instrs += 1;
                issued += 1;
            }
        }

        // Reap finished threads (largest index first).
        finished.sort_unstable_by(|a, b| b.cmp(a));
        finished.dedup();
        for ti in finished {
            let done = self.threads.swap_remove(ti);
            self.stats.completed_threads += 1;
            if ctx.trace.on(Category::Cmp) {
                ctx.trace.emit(EventData::CmpRetire {
                    cmas: done.prog as u32,
                    live: self.threads.len() as u32,
                });
            }
        }
        if self.threads.is_empty() {
            self.rr = 0;
        } else {
            self.rr %= self.threads.len();
        }
        Ok(())
    }

    /// Serialises the engine's dynamic state (thread contexts, round-robin
    /// pointer, statistics and the dynamic controllers). The CMAS programs
    /// are static and come from the workload, which the checkpoint header
    /// pins.
    pub fn save_state(&self, e: &mut Enc) {
        e.usize(self.threads.len());
        for th in &self.threads {
            e.usize(th.prog);
            e.u32(th.pc);
            th.regs.save_state(e);
            e.u64(th.busy_until);
        }
        e.usize(self.rr);
        let CmpStats {
            forks,
            dropped_forks,
            instrs,
            prefetches,
            dropped_prefetches,
            scq_block_cycles,
            completed_threads,
            suppressed_forks,
            slip_adaptations,
        } = self.stats;
        for v in [
            forks,
            dropped_forks,
            instrs,
            prefetches,
            dropped_prefetches,
            scq_block_cycles,
            completed_threads,
            suppressed_forks,
            slip_adaptations,
        ] {
            e.u64(v);
        }
        self.slip.save_state(e);
        self.filter.save_state(e);
    }

    /// Restores the state saved by [`CmpEngine::save_state`]; the receiver
    /// must be built over the same CMAS programs.
    pub fn load_state(&mut self, d: &mut Dec) -> WireResult<()> {
        let n = d.usize()?;
        self.threads.clear();
        for _ in 0..n {
            let prog = d.usize()?;
            if prog >= self.programs.len() {
                return Err(WireError {
                    pos: 0,
                    what: "cmp thread program out of range",
                });
            }
            let pc = d.u32()?;
            let mut regs = RegFile::new();
            regs.load_state(d)?;
            let busy_until = d.u64()?;
            self.threads.push(CmpThread {
                prog,
                pc,
                regs,
                busy_until,
            });
        }
        self.rr = d.usize()?;
        self.stats.forks = d.u64()?;
        self.stats.dropped_forks = d.u64()?;
        self.stats.instrs = d.u64()?;
        self.stats.prefetches = d.u64()?;
        self.stats.dropped_prefetches = d.u64()?;
        self.stats.scq_block_cycles = d.u64()?;
        self.stats.completed_threads = d.u64()?;
        self.stats.suppressed_forks = d.u64()?;
        self.stats.slip_adaptations = d.u64()?;
        self.slip.load_state(d)?;
        self.filter.load_state(d)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::asm::assemble;
    use hidisc_isa::mem::Memory;
    use hidisc_isa::IntReg;
    use hidisc_mem::{MemConfig, MemSystem};
    use hidisc_ooo::{QueueConfig, QueueFile};

    fn ctx_parts() -> (MemSystem, QueueFile, Memory, Vec<TriggerFork>) {
        (
            MemSystem::new(MemConfig::paper()),
            QueueFile::new(QueueConfig {
                scq: 4,
                ..QueueConfig::paper()
            }),
            Memory::new(),
            Vec::new(),
        )
    }

    fn fork_with(engine: &mut CmpEngine, regs: &[(u8, i64)]) {
        let mut rf = RegFile::new();
        for &(r, v) in regs {
            rf.set_i(IntReg::new(r), v);
        }
        engine.fork(
            TriggerFork { cmas: 0, regs: rf },
            &mut Telemetry::disabled(),
        );
    }

    fn run(engine: &mut CmpEngine, cycles: u64) -> (MemSystem, QueueFile) {
        let (mut ms, mut qf, mut mem, mut tr) = ctx_parts();
        let mut tel = Telemetry::disabled();
        for now in 0..cycles {
            let mut ctx = CoreCtx {
                mem_sys: &mut ms,
                queues: &mut qf,
                data: &mut mem,
                triggers: &mut tr,
                trace: &mut tel,
            };
            engine.step(now, &mut ctx).unwrap();
        }
        (ms, qf)
    }

    const STRIDE_CMAS: &str = r"
        loop:
            putscq
            pref 0(r1)
            add r1, r1, 64
            sub r2, r2, 1
            bne r2, r0, loop
            halt
    ";

    #[test]
    fn stride_slice_prefetches_and_completes() {
        let prog = assemble("cmas", STRIDE_CMAS).unwrap();
        let mut e = CmpEngine::new(CmpConfig::default(), vec![prog]);
        fork_with(&mut e, &[(1, 0x100000), (2, 3)]);
        // SCQ capacity 4 > 3 iterations: never blocks.
        let (ms, _) = run(&mut e, 200);
        assert_eq!(e.stats().completed_threads, 1);
        assert_eq!(e.stats().prefetches, 3);
        assert!(ms.stats().l1.prefetch_accesses >= 3);
        assert_eq!(e.live_threads(), 0);
    }

    #[test]
    fn scq_throttles_runahead() {
        let prog = assemble("cmas", STRIDE_CMAS).unwrap();
        let mut e = CmpEngine::new(CmpConfig::default(), vec![prog]);
        fork_with(&mut e, &[(1, 0x100000), (2, 100)]);
        // Nobody drains the SCQ (capacity 4): the thread must block after
        // 4 iterations.
        let (_, qf) = run(&mut e, 500);
        assert_eq!(e.live_threads(), 1, "thread still alive, blocked");
        assert_eq!(qf.len(Queue::Scq), 4);
        assert!(e.stats().scq_block_cycles > 0);
        assert!(e.stats().prefetches <= 5);
    }

    #[test]
    fn pointer_chase_loads_return_data() {
        let prog = assemble(
            "cmas",
            r"
        loop:
            putscq
            ld r1, 0(r1)
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ",
        )
        .unwrap();
        let mut e = CmpEngine::new(CmpConfig::default(), vec![prog]);
        let (mut ms, mut qf, mut mem, mut tr) = ctx_parts();
        // chain: 0x1000 -> 0x2000 -> 0x3000
        mem.write_i64(0x1000, 0x2000).unwrap();
        mem.write_i64(0x2000, 0x3000).unwrap();
        fork_with(&mut e, &[(1, 0x1000), (2, 2)]);
        let mut tel = Telemetry::disabled();
        for now in 0..2000 {
            let mut ctx = CoreCtx {
                mem_sys: &mut ms,
                queues: &mut qf,
                data: &mut mem,
                triggers: &mut tr,
                trace: &mut tel,
            };
            e.step(now, &mut ctx).unwrap();
        }
        assert_eq!(e.stats().completed_threads, 1);
        // Both chain nodes were prefetched (dependently, so this takes
        // ~2 memory latencies of simulated time); the next-line assist may
        // add adjacent-line prefetches on top.
        assert!(e.stats().prefetches >= 2);
        assert!(ms.stats().l1.prefetch_misses >= 2);
    }

    #[test]
    fn fork_capacity_evicts_same_slice() {
        let prog = assemble("cmas", "halt").unwrap();
        let mut e = CmpEngine::new(
            CmpConfig {
                max_threads: 2,
                ..CmpConfig::default()
            },
            vec![prog],
        );
        for _ in 0..5 {
            fork_with(&mut e, &[]);
        }
        // Same slice id: newer forks evict older threads, so every fork
        // lands but three evictions are recorded.
        assert_eq!(e.stats().forks, 5);
        assert_eq!(e.stats().dropped_forks, 3);
        assert_eq!(e.live_threads(), 2);
    }

    #[test]
    fn fork_capacity_drops_unrelated_forks() {
        let prog = assemble("cmas", "halt").unwrap();
        let mut e = CmpEngine::new(
            CmpConfig {
                max_threads: 1,
                ..CmpConfig::default()
            },
            vec![prog.clone(), prog],
        );
        e.fork(
            TriggerFork {
                cmas: 0,
                regs: RegFile::new(),
            },
            &mut Telemetry::disabled(),
        );
        // A fork for a *different* slice cannot evict: dropped.
        e.fork(
            TriggerFork {
                cmas: 1,
                regs: RegFile::new(),
            },
            &mut Telemetry::disabled(),
        );
        assert_eq!(e.stats().forks, 1);
        assert_eq!(e.stats().dropped_forks, 1);
    }

    #[test]
    fn illegal_instruction_rejected() {
        let prog = assemble("cmas", "sd r1, 0(r2)\nhalt").unwrap();
        let mut e = CmpEngine::new(CmpConfig::default(), vec![prog]);
        fork_with(&mut e, &[]);
        let (mut ms, mut qf, mut mem, mut tr) = ctx_parts();
        let mut tel = Telemetry::disabled();
        let mut ctx = CoreCtx {
            mem_sys: &mut ms,
            queues: &mut qf,
            data: &mut mem,
            triggers: &mut tr,
            trace: &mut tel,
        };
        assert!(e.step(0, &mut ctx).is_err());
    }

    #[test]
    fn stale_trigger_id_ignored() {
        let mut e = CmpEngine::new(CmpConfig::default(), vec![]);
        e.fork(
            TriggerFork {
                cmas: 7,
                regs: RegFile::new(),
            },
            &mut Telemetry::disabled(),
        );
        assert_eq!(e.live_threads(), 0);
        assert_eq!(e.stats().forks, 0);
    }
}
