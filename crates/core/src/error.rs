//! Typed errors from the machine run API.

use crate::config::Model;
use hidisc_isa::IsaError;

/// Why a [`Machine::run`](crate::Machine::run) did not reach completion.
///
/// The `Display` output of the watchdog and budget variants reproduces the
/// historical string messages exactly, so log scrapers and substring
/// assertions written against the old `String` errors keep working.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The progress watchdog fired: no instruction committed for
    /// `deadlock_cycles` consecutive cycles — a deadlock (e.g. a mis-sliced
    /// program starving a queue pop) or a livelock.
    Watchdog {
        /// The model that hung.
        model: Model,
        /// Commit-free cycles observed when the watchdog fired.
        idle: u64,
        /// Machine clock at the time of the error.
        cycle: u64,
        /// Fetch pc of the first unfinished core — where the front end was
        /// stuck (0 when no core was identifiable).
        pc: u32,
    },
    /// The hard cycle budget (`max_cycles`) was exhausted.
    CycleBudget {
        /// The configured budget.
        limit: u64,
    },
    /// The wall-clock deadline passed to
    /// [`Machine::run_deadline`](crate::Machine::run_deadline) expired.
    /// Distinct from [`RunError::CycleBudget`] so callers never have to
    /// infer the cause from the cycle value.
    Deadline {
        /// Machine clock when the deadline fired.
        cycle: u64,
    },
    /// Functional execution failed (bad memory access, fp misuse, ...).
    Exec(IsaError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Watchdog {
                model, idle, cycle, ..
            } => write!(
                f,
                "machine {model} made no progress for {idle} cycles (deadlock?) at cycle {cycle}"
            ),
            RunError::CycleBudget { limit } => write!(f, "cycle budget exceeded ({limit})"),
            RunError::Deadline { cycle } => {
                write!(f, "wall-clock deadline expired at cycle {cycle}")
            }
            RunError::Exec(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for RunError {
    fn from(e: IsaError) -> RunError {
        RunError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The typed errors must render the exact historical messages: tooling
    /// and tests match on these substrings.
    #[test]
    fn display_is_backward_compatible() {
        let w = RunError::Watchdog {
            model: Model::HiDisc,
            idle: 100_001,
            cycle: 123_456,
            pc: 7,
        };
        assert_eq!(
            w.to_string(),
            "machine HiDISC made no progress for 100001 cycles (deadlock?) at cycle 123456"
        );
        let b = RunError::CycleBudget { limit: 2_000 };
        assert_eq!(b.to_string(), "cycle budget exceeded (2000)");
        let d = RunError::Deadline { cycle: 4_096 };
        assert_eq!(d.to_string(), "wall-clock deadline expired at cycle 4096");
        let e = RunError::Exec(IsaError::Exec {
            pc: 9,
            msg: "fp instruction on core CP".into(),
        });
        assert_eq!(
            e.to_string(),
            "execution error at pc 9: fp instruction on core CP"
        );
    }
}
