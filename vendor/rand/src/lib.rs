//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal implementation of exactly the surface it uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer and float ranges. The generator is a
//! splitmix64 stream — deterministic per seed, statistically solid for
//! workload synthesis, and *not* a drop-in reproduction of upstream
//! `SmallRng` output (seeded data differs from a crates.io build, which
//! is fine: every expected result in this repo is recomputed natively
//! from the same generated data).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (the subset the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample one value from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

pub mod rngs {
    //! Concrete generators.

    /// Small, fast, seedable generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng {
                state: state.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ 0x6a09_e667_f3bc_c908,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(-5..5i64);
            assert!((-5..5).contains(&v));
            let w = r.gen_range(1..=4i64);
            assert!((1..=4).contains(&w));
            let f = r.gen_range(-4.0..4.0f64);
            assert!((-4.0..4.0).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.gen_range(0..8usize)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "skewed bucket: {buckets:?}");
        }
    }
}
