//! A tiny readiness poller: the minimal slice of the mio/libc surface
//! that `hidisc-serve`'s reactor needs, vendored because the build
//! environment has no crates.io access.
//!
//! On Linux this is epoll(7); on other unix it degrades to poll(2) with
//! a registration table kept in userspace. The workspace keeps
//! `#![forbid(unsafe_code)]` on every pre-existing crate root; this crate
//! is the one sanctioned exception, and even here `unsafe` is confined to
//! the [`sys`] module — every call is a direct, audited syscall wrapper
//! with no pointer arithmetic beyond passing a stack buffer.
//!
//! The API is deliberately level-triggered and fd-keyed: the caller
//! associates a `u64` token with each fd and gets `(token, readiness)`
//! pairs back from [`Poller::wait`].

#![deny(unsafe_code)]

use std::io;
use std::os::raw::c_int;

/// A raw file descriptor, as produced by `AsRawFd::as_raw_fd`.
pub type Fd = c_int;

/// Which readiness classes a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or a peer hang-up is pending).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest, the steady state of a parked connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read+write interest, used while a response is partially flushed.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd has bytes to read (or EOF/half-close to observe).
    pub readable: bool,
    /// The fd can accept writes.
    pub writable: bool,
    /// An error condition is pending (`EPOLLERR`); the fd should be
    /// closed after a final read drains any queued data.
    pub error: bool,
    /// The peer hung up (`EPOLLHUP`/`EPOLLRDHUP`).
    pub hangup: bool,
}

/// A readiness poller over a set of registered fds.
///
/// Registrations are level-triggered: a fd that stays readable keeps
/// reporting readable. The poller does not own the fds — the caller
/// closes them (and should [`Poller::delete`] first, though the kernel
/// also drops epoll registrations on close).
pub struct Poller {
    inner: sys::PollerImpl,
}

impl Poller {
    /// Creates the poller (an `epoll` instance on Linux).
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: sys::PollerImpl::new()?,
        })
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: Fd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.ctl(sys::Op::Add, fd, token, interest)
    }

    /// Changes the interest (and token) of an already-registered fd.
    pub fn modify(&self, fd: Fd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.ctl(sys::Op::Mod, fd, token, interest)
    }

    /// Removes a registration.
    pub fn delete(&self, fd: Fd) -> io::Result<()> {
        self.inner.ctl(sys::Op::Del, fd, 0, Interest::READ)
    }

    /// Blocks until at least one registered fd is ready or `timeout_ms`
    /// elapses (`-1` = wait forever, `0` = poll). Ready events are
    /// appended to `events` (cleared first); returns how many arrived.
    pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        events.clear();
        self.inner.wait(events, timeout_ms)
    }
}

/// Raises the process `RLIMIT_NOFILE` soft limit towards `want` (capped
/// at the hard limit) and returns the resulting soft limit. Needed
/// before holding tens of thousands of sockets; a no-op when the soft
/// limit already suffices.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    sys::raise_nofile_limit(want)
}

/// The one module allowed to contain `unsafe`: direct syscall wrappers.
/// Audit notes inline; nothing here retains raw pointers past the call.
#[allow(unsafe_code)]
mod sys {
    use super::{Event, Fd, Interest};
    use std::io;
    use std::os::raw::{c_int, c_ulong};

    pub(super) enum Op {
        Add,
        Mod,
        Del,
    }

    #[repr(C)]
    struct RLimit {
        rlim_cur: c_ulong,
        rlim_max: c_ulong,
    }

    const RLIMIT_NOFILE: c_int = 7;

    extern "C" {
        fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }

    /// SAFETY: `getrlimit`/`setrlimit` read/write exactly one `RLimit`,
    /// passed by stack pointer that does not outlive the call.
    // `c_ulong` is platform-width: the u64 conversions are identity on
    // 64-bit targets (where clippy flags them) but real on 32-bit ones.
    #[allow(clippy::useless_conversion, clippy::unnecessary_cast)]
    pub(super) fn raise_nofile_limit(want: u64) -> io::Result<u64> {
        let mut lim = RLimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return Err(io::Error::last_os_error());
        }
        if u64::from(lim.rlim_cur) >= want {
            return Ok(lim.rlim_cur as u64);
        }
        lim.rlim_cur = (want as c_ulong).min(lim.rlim_max);
        if unsafe { setrlimit(RLIMIT_NOFILE, &lim) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(lim.rlim_cur as u64)
    }

    #[cfg(target_os = "linux")]
    pub(super) use linux::PollerImpl;

    #[cfg(target_os = "linux")]
    mod linux {
        use super::{Event, Fd, Interest, Op};
        use std::io;
        use std::os::raw::c_int;

        const EPOLLIN: u32 = 0x001;
        const EPOLLOUT: u32 = 0x004;
        const EPOLLERR: u32 = 0x008;
        const EPOLLHUP: u32 = 0x010;
        const EPOLLRDHUP: u32 = 0x2000;
        const EPOLL_CLOEXEC: c_int = 0o2000000;
        const EPOLL_CTL_ADD: c_int = 1;
        const EPOLL_CTL_DEL: c_int = 2;
        const EPOLL_CTL_MOD: c_int = 3;

        /// Mirrors the kernel's `struct epoll_event`; packed on x86 where
        /// the ABI packs it.
        #[repr(C)]
        #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
        #[derive(Clone, Copy)]
        struct EpollEvent {
            events: u32,
            data: u64,
        }

        extern "C" {
            fn epoll_create1(flags: c_int) -> c_int;
            fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            fn close(fd: c_int) -> c_int;
        }

        pub(in super::super) struct PollerImpl {
            epfd: c_int,
        }

        impl PollerImpl {
            /// SAFETY: `epoll_create1` takes no pointers.
            pub(in super::super) fn new() -> io::Result<PollerImpl> {
                let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
                if epfd < 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(PollerImpl { epfd })
            }

            /// SAFETY: `epoll_ctl` reads one `EpollEvent` from a stack
            /// pointer valid for the duration of the call (and ignores it
            /// for `DEL`).
            pub(in super::super) fn ctl(
                &self,
                op: Op,
                fd: Fd,
                token: u64,
                interest: Interest,
            ) -> io::Result<()> {
                let mut events = EPOLLRDHUP;
                if interest.readable {
                    events |= EPOLLIN;
                }
                if interest.writable {
                    events |= EPOLLOUT;
                }
                let mut ev = EpollEvent {
                    events,
                    data: token,
                };
                let op = match op {
                    Op::Add => EPOLL_CTL_ADD,
                    Op::Mod => EPOLL_CTL_MOD,
                    Op::Del => EPOLL_CTL_DEL,
                };
                if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } != 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(())
            }

            /// SAFETY: `epoll_wait` writes at most `buf.len()` events into
            /// `buf`, which outlives the call; the kernel reports how many
            /// were written and only that prefix is read.
            pub(in super::super) fn wait(
                &self,
                out: &mut Vec<Event>,
                timeout_ms: i32,
            ) -> io::Result<usize> {
                let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
                let n = loop {
                    let n = unsafe {
                        epoll_wait(
                            self.epfd,
                            buf.as_mut_ptr(),
                            buf.len() as c_int,
                            timeout_ms as c_int,
                        )
                    };
                    if n >= 0 {
                        break n as usize;
                    }
                    let err = io::Error::last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                for ev in &buf[..n] {
                    // Copy out of the (possibly packed) struct before use.
                    let (bits, data) = (ev.events, ev.data);
                    out.push(Event {
                        token: data,
                        readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                        writable: bits & EPOLLOUT != 0,
                        error: bits & EPOLLERR != 0,
                        hangup: bits & (EPOLLHUP | EPOLLRDHUP) != 0,
                    });
                }
                Ok(n)
            }
        }

        impl Drop for PollerImpl {
            /// SAFETY: closes the epoll fd this struct exclusively owns.
            fn drop(&mut self) {
                unsafe {
                    close(self.epfd);
                }
            }
        }
    }

    #[cfg(not(target_os = "linux"))]
    pub(super) use fallback::PollerImpl;

    /// poll(2) fallback for non-Linux unix: registrations live in a
    /// userspace table; every `wait` rebuilds the pollfd array. O(n) per
    /// wakeup, fine for development on small connection counts.
    #[cfg(not(target_os = "linux"))]
    mod fallback {
        use super::{Event, Fd, Interest, Op};
        use std::io;
        use std::os::raw::{c_int, c_short, c_uint};
        use std::sync::Mutex;

        const POLLIN: c_short = 0x001;
        const POLLOUT: c_short = 0x004;
        const POLLERR: c_short = 0x008;
        const POLLHUP: c_short = 0x010;

        #[repr(C)]
        struct PollFd {
            fd: c_int,
            events: c_short,
            revents: c_short,
        }

        extern "C" {
            fn poll(fds: *mut PollFd, nfds: c_uint, timeout: c_int) -> c_int;
        }

        pub(in super::super) struct PollerImpl {
            regs: Mutex<Vec<(Fd, u64, Interest)>>,
        }

        impl PollerImpl {
            pub(in super::super) fn new() -> io::Result<PollerImpl> {
                Ok(PollerImpl {
                    regs: Mutex::new(Vec::new()),
                })
            }

            pub(in super::super) fn ctl(
                &self,
                op: Op,
                fd: Fd,
                token: u64,
                interest: Interest,
            ) -> io::Result<()> {
                let mut regs = self.regs.lock().expect("poller registrations");
                match op {
                    Op::Add => regs.push((fd, token, interest)),
                    Op::Mod => match regs.iter_mut().find(|(f, _, _)| *f == fd) {
                        Some(r) => *r = (fd, token, interest),
                        None => return Err(io::Error::from(io::ErrorKind::NotFound)),
                    },
                    Op::Del => regs.retain(|(f, _, _)| *f != fd),
                }
                Ok(())
            }

            /// SAFETY: `poll` reads and writes exactly `fds.len()` entries
            /// of the stack-owned `fds` vector, which outlives the call.
            pub(in super::super) fn wait(
                &self,
                out: &mut Vec<Event>,
                timeout_ms: i32,
            ) -> io::Result<usize> {
                let snapshot: Vec<(Fd, u64, Interest)> =
                    self.regs.lock().expect("poller registrations").clone();
                let mut fds: Vec<PollFd> = snapshot
                    .iter()
                    .map(|(fd, _, i)| PollFd {
                        fd: *fd,
                        events: if i.readable { POLLIN } else { 0 }
                            | if i.writable { POLLOUT } else { 0 },
                        revents: 0,
                    })
                    .collect();
                let n = loop {
                    let n =
                        unsafe { poll(fds.as_mut_ptr(), fds.len() as c_uint, timeout_ms as c_int) };
                    if n >= 0 {
                        break n as usize;
                    }
                    let err = io::Error::last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                for (pfd, (_, token, _)) in fds.iter().zip(snapshot.iter()) {
                    if pfd.revents == 0 {
                        continue;
                    }
                    out.push(Event {
                        token: *token,
                        readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                        writable: pfd.revents & POLLOUT != 0,
                        error: pfd.revents & POLLERR != 0,
                        hangup: pfd.revents & POLLHUP != 0,
                    });
                }
                Ok(n)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poller_reports_accept_and_data_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 1, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing pending: a zero-timeout wait returns empty.
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);

        let mut client = TcpStream::connect(addr).unwrap();
        // Listener becomes readable (pending accept).
        let n = poller.wait(&mut events, 2_000).unwrap();
        assert!(n >= 1, "no accept readiness");
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        poller.add(server.as_raw_fd(), 2, Interest::READ).unwrap();
        client.write_all(b"ping").unwrap();
        let n = poller.wait(&mut events, 2_000).unwrap();
        assert!(n >= 1, "no data readiness");
        assert!(events.iter().any(|e| e.token == 2 && e.readable));

        // Write interest on an idle socket reports writable immediately.
        poller
            .modify(server.as_raw_fd(), 2, Interest::READ_WRITE)
            .unwrap();
        poller.wait(&mut events, 2_000).unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.writable));

        // Deleting stops reports for that fd.
        poller.delete(server.as_raw_fd()).unwrap();
        client.write_all(b"more").unwrap();
        poller.wait(&mut events, 50).unwrap();
        assert!(!events.iter().any(|e| e.token == 2));

        // Drain to keep the test deterministic on teardown.
        let mut buf = [0u8; 16];
        let mut server = server;
        let _ = server.read(&mut buf);
    }

    #[test]
    fn hangup_is_reported_as_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 7, Interest::READ).unwrap();
        drop(client);
        let mut events = Vec::new();
        poller.wait(&mut events, 2_000).unwrap();
        let ev = events.iter().find(|e| e.token == 7).expect("hangup event");
        // A closed peer must wake the reader (read() will then see EOF).
        assert!(ev.readable || ev.hangup);
    }

    #[test]
    fn nofile_limit_can_be_raised_or_is_already_high() {
        let got = raise_nofile_limit(2048).expect("rlimit");
        assert!(got >= 1024, "soft limit unexpectedly low: {got}");
    }
}
