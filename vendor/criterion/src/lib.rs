//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the harness surface the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups, throughput
//! annotation, `Bencher::iter`). Statistics are deliberately simple:
//! each benchmark warms up briefly, then times batches until it has
//! `sample_size` samples or the time budget runs out, and reports the
//! median ns/iter plus derived throughput. Good enough for before/after
//! comparisons on one machine; not a substitute for real criterion.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Work per `Bencher::iter` call, used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 24 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_bench(&id.into(), self.sample_size, None, f);
        self
    }
}

/// A named group sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the number of timing samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (report already printed per bench).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the body.
pub struct Bencher {
    samples_wanted: usize,
    /// Median nanoseconds per iteration, filled by `iter`.
    median_ns: f64,
}

impl Bencher {
    /// Times `body`, storing the median ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up: run until 50 ms or 3 iterations, whichever is later.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || warm_start.elapsed() < Duration::from_millis(50) {
            std::hint::black_box(body());
            warm_iters += 1;
            if warm_iters >= 10_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Batch so one sample takes ~10 ms, then collect samples within a
        // ~2 s budget.
        let batch = ((0.010 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        let budget = Duration::from_secs(2);
        let run_start = Instant::now();
        let mut samples: Vec<f64> = Vec::with_capacity(self.samples_wanted);
        while samples.len() < self.samples_wanted
            && (samples.len() < 2 || run_start.elapsed() < budget)
        {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(body());
            }
            samples.push(t0.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_ns = samples[samples.len() / 2];
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples_wanted: samples,
        median_ns: f64::NAN,
    };
    f(&mut b);
    let ns = b.median_ns;
    let time = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => format!("  thrpt: {:.3} Melem/s", n as f64 / ns * 1e3),
        Some(Throughput::Bytes(n)) => format!(
            "  thrpt: {:.3} MiB/s",
            n as f64 / ns * 1e9 / (1024.0 * 1024.0)
        ),
        None => String::new(),
    };
    println!("{name:<40} time: {time}/iter{thrpt}");
}

/// Declares a function running the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_sane_time() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("selftest");
        g.sample_size(4);
        g.throughput(Throughput::Elements(100));
        let mut ran = false;
        g.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran = true;
            assert!(b.median_ns.is_finite() && b.median_ns > 0.0);
        });
        g.finish();
        assert!(ran);
    }
}
