//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_recursive` / `boxed`, [`strategy::Just`], range and tuple
//! strategies, [`arbitrary::any`], [`collection::vec`], [`option::of`],
//! [`prop_oneof!`] (plain and weighted), and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//! - no shrinking — a failing case panics with the raw inputs instead of
//!   a minimized counterexample;
//! - generation is a fixed deterministic stream per test name, so runs
//!   are reproducible without `.proptest-regressions` files (which are
//!   ignored);
//! - `prop_assert!` panics rather than returning a `TestCaseError`.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case generation and per-test configuration.

    /// Deterministic RNG driving case generation (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed (the hashed test name).
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `f` receives the strategy for the
        /// next-shallower level and returns the strategy one level deeper.
        /// Upstream proptest decays recursion probabilistically; here the
        /// tree is pre-expanded `depth` levels, which bounds value size the
        /// same way provided `f`'s result keeps non-recursive arms.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut s = self.boxed();
            for _ in 0..depth {
                s = f(s).boxed();
            }
            s
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.gen_value(rng)))
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Weighted choice between boxed alternatives; built by [`prop_oneof!`].
    #[derive(Clone)]
    pub struct OneOf<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> OneOf<T> {
        /// Builds from `(weight, strategy)` arms; weights must not all be 0.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
            assert!(
                arms.iter().any(|(w, _)| *w > 0),
                "prop_oneof! needs a positive weight"
            );
            OneOf { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.gen_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait ArbitraryValue {
        /// Draws an arbitrary value, biased toward edge cases.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy over all values of `T`; see [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (upstream `any::<T>()`).
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias 1-in-8 draws toward boundary values, like upstream.
                    if rng.below(8) == 0 {
                        *[0 as $t, 1 as $t, <$t>::MAX, <$t>::MIN]
                            .get(rng.below(4) as usize)
                            .unwrap()
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for generated collections: `[lo, hi]` inclusive.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange(usize, usize);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange(n, n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange(r.start, r.end - 1)
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange(*r.start(), *r.end())
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let SizeRange(lo, hi) = self.size;
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! Option strategies (`prop::option::of`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// See [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Some three times out of four, like upstream's default weight.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.gen_value(rng))
            }
        }
    }

    /// `Option<T>` wrapping values from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    /// Path alias so `prop::collection::vec` / `prop::option::of` resolve.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Hashes a test name into a deterministic RNG seed (FNV-1a).
pub fn seed_of(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Defines property tests: each `fn name(pat in strategy, ...)` block runs
/// `cases` times with freshly generated inputs. Panics on the first failing
/// case (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::new($crate::seed_of(stringify!($name)));
                for case in 0..config.cases {
                    let _ = case;
                    $(let $arg = {
                        let strat = $strat;
                        $crate::strategy::Strategy::gen_value(&strat, &mut rng)
                    };)+
                    { $body }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Asserts inside a property body (panics; upstream returns an error).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

pub use strategy::OneOf;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(ts) => 1 + ts.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in -5i64..=5, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u64..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_map_option_compose(
            x in prop_oneof![3 => Just(1i64), 1 => (10i64..20).prop_map(|v| v * 2)],
            o in prop::option::of(Just(7u8)),
        ) {
            prop_assert!(x == 1 || (20..40).contains(&x));
            prop_assert!(o.is_none() || o == Some(7));
        }

        #[test]
        fn recursive_strategies_bound_depth(
            t in (0i64..100).prop_map(Tree::Leaf).boxed().prop_recursive(3, 24, 4, |inner| {
                prop_oneof![
                    2 => (0i64..100).prop_map(Tree::Leaf),
                    1 => prop::collection::vec(inner.clone(), 1..4).prop_map(Tree::Node),
                ]
            })
        ) {
            prop_assert!(depth(&t) <= 4, "depth {} tree {:?}", depth(&t), t);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::new(crate::seed_of("x"));
        let mut b = crate::test_runner::TestRng::new(crate::seed_of("x"));
        let s = prop::collection::vec(0u64..1000, 5..9);
        assert_eq!(s.gen_value(&mut a), s.gen_value(&mut b));
    }
}
