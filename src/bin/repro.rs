//! `repro` — regenerates every table and figure of the HiDISC paper,
//! serves the simulator as an HTTP service (`repro serve`, optionally as
//! one shard of a farm via `--shard-of k/N --peers ...`), and drives
//! batch sweeps against a running service (`repro sweep fig8`).
//!
//! ```text
//! repro [params|fig8|table2|fig9|fig10|check|ablate|all|serve]
//!       [--format text|csv] [--scale test|paper|large] [--seed N]
//!       [--threads N] [--l2-lat N] [--mem-lat N] [--scq-depth N]
//!       [--scheduler ready|scan]
//! ```
//!
//! Every artifact goes through the [`bench::Report`] trait, so `--format
//! csv` works for each of them. The machine configuration is assembled
//! with [`MachineConfig::builder`]; an invalid sweep (`--scq-depth 0`)
//! exits 2 with the typed [`ConfigError`] message.

use hidisc::telemetry::log::{Level, LogFormat};
use hidisc::telemetry::TraceConfig;
use hidisc::{MachineConfig, Model, Scheduler};
use hidisc_bench::{self as bench, Report};
use hidisc_serve::{ServeConfig, Service};
use hidisc_workloads::Scale;

struct Args {
    cmd: String,
    arg: Option<String>,
    scale: Scale,
    seed: u64,
    /// `--format csv` (default is the aligned text tables).
    csv: bool,
    l2_lat: Option<u32>,
    mem_lat: Option<u32>,
    scq_depth: Option<usize>,
    scheduler: Option<Scheduler>,
    /// `--trace <path>`: write the Chrome-trace JSON here.
    trace_path: Option<String>,
    /// `--trace-filter <cats>`: comma list of categories (or `all`).
    trace_filter: TraceConfig,
    /// `--metrics-interval <cycles>`: interval-metrics sampling (0 off).
    metrics_interval: u64,
    /// `--event-cap <n>`: telemetry buffer cap (events past it drop).
    event_cap: Option<usize>,
    /// `--stream`: serialise the trace while the machine runs instead of
    /// buffering the whole recording.
    stream: bool,
    /// `serve --addr <host:port>` (default 127.0.0.1:8080).
    addr: Option<String>,
    /// `serve --workers <n>` (0 = one per host core).
    workers: usize,
    /// `serve --queue-depth <n>`: bounded job queue (429 past it).
    queue_depth: usize,
    /// `serve --cache-dir <dir>`: persist results here.
    cache_dir: Option<String>,
    /// `serve --max-conns <n>`: concurrent-connection cap (503 past it).
    max_conns: usize,
    /// `serve --cache-bytes <n>`: in-memory result-cache budget.
    cache_bytes: Option<usize>,
    /// `serve --idle-timeout-ms <n>`: idle keep-alive connection timeout.
    idle_timeout_ms: Option<u64>,
    /// `--log-level off|error|warn|info|debug`: outer `None` = flag
    /// absent (`repro serve` then defaults to `info`, `repro connscale`'s
    /// in-process target to off).
    log_level: Option<Option<Level>>,
    /// `--log-format text|json` (default text/logfmt).
    log_format: Option<LogFormat>,
    /// `--log-file <path>`: log destination (stderr when absent).
    log_file: Option<String>,
    /// `--slow-request-ms <n>`: WARN threshold (0 disables).
    slow_request_ms: Option<u64>,
    /// `serve --shard-of <k/N>`: run as shard k of an N-shard farm.
    shard_of: Option<(u32, u32)>,
    /// `serve --peers <a,b,c>`: the farm's shard addresses, in order.
    peers: Vec<String>,
    /// `connscale --conns <n>`: connections to ramp and hold.
    conns: usize,
    /// `connscale --rounds <n>`: keep-alive request rounds.
    rounds: usize,
    /// `--sample <detail>:<skip>`: run in SMARTS-style sampling mode.
    sample: Option<(u64, u64)>,
    /// `bisect --a <l2>:<mem>`: configuration A latencies.
    cfg_a: Option<(u32, u32)>,
    /// `bisect --b <l2>:<mem>`: configuration B latencies.
    cfg_b: Option<(u32, u32)>,
    /// `simspeed --format json`: emit the `BENCH_simspeed.json` document.
    json: bool,
    /// `check --speculation`: run the advisory run-ahead/alias analysis
    /// instead of the safety verifier.
    speculation: bool,
    /// `check --deny-warnings`: exit 1 on warnings, not just errors.
    deny_warnings: bool,
}

fn parse_args() -> Args {
    let mut cmd = "all".to_string();
    let mut explicit_cmd = false;
    let mut arg: Option<String> = None;
    let mut scale = Scale::Paper;
    let mut seed = 2003; // the paper's publication year
    let mut csv = false;
    let mut l2_lat = None;
    let mut mem_lat = None;
    let mut scq_depth = None;
    let mut scheduler = None;
    let mut trace_path: Option<String> = None;
    let mut trace_filter = TraceConfig::ALL_EVENTS;
    let mut metrics_interval = 0;
    let mut event_cap = None;
    let mut stream = false;
    let mut addr = None;
    let mut workers = 0;
    let mut queue_depth = 32;
    let mut cache_dir = None;
    let mut max_conns = 10_240; // ServeConfig::builder's default cap
    let mut cache_bytes = None;
    let mut idle_timeout_ms = None;
    let mut log_level = None;
    let mut log_format = None;
    let mut log_file = None;
    let mut slow_request_ms = None;
    let mut shard_of = None;
    let mut peers: Vec<String> = Vec::new();
    let mut conns = 512;
    let mut rounds = 3;
    let mut sample = None;
    let mut cfg_a = None;
    let mut cfg_b = None;
    let mut json = false;
    let mut speculation = false;
    let mut deny_warnings = false;
    let mut it = std::env::args().skip(1);
    let num = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or_else(|| {
                eprintln!("{flag} needs a number");
                std::process::exit(2);
            })
    };
    // A colon-separated pair of numbers, e.g. `--sample 2000:20000`.
    let pair = |it: &mut dyn Iterator<Item = String>, flag: &str, what: &str| -> (u64, u64) {
        let v = it.next().unwrap_or_default();
        v.split_once(':')
            .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
            .unwrap_or_else(|| {
                eprintln!("{flag} needs <{what}> (two numbers separated by `:`)");
                std::process::exit(2);
            })
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_default();
                scale = match v.as_str() {
                    "test" => Scale::Test,
                    "paper" => Scale::Paper,
                    "large" => Scale::Large,
                    other => {
                        eprintln!("unknown scale `{other}` (use test|paper|large)");
                        std::process::exit(2);
                    }
                };
            }
            "--format" => {
                let v = it.next().unwrap_or_default();
                match v.as_str() {
                    "text" => (csv, json) = (false, false),
                    "csv" => (csv, json) = (true, false),
                    "json" => (csv, json) = (false, true),
                    other => {
                        eprintln!("unknown format `{other}` (use text|csv|json)");
                        std::process::exit(2);
                    }
                };
            }
            "--scheduler" => {
                let v = it.next().unwrap_or_default();
                scheduler = match v.as_str() {
                    "ready" => Some(Scheduler::ReadyList),
                    "scan" => Some(Scheduler::Scan),
                    other => {
                        eprintln!("unknown scheduler `{other}` (use ready|scan)");
                        std::process::exit(2);
                    }
                };
            }
            "--trace" => {
                trace_path = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--trace needs an output path");
                    std::process::exit(2);
                }));
            }
            "--trace-filter" => {
                let v = it.next().unwrap_or_default();
                trace_filter = TraceConfig::parse_filter(&v).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--metrics-interval" => metrics_interval = num(&mut it, "--metrics-interval"),
            "--event-cap" => event_cap = Some(num(&mut it, "--event-cap") as usize),
            "--stream" => stream = true,
            "--seed" => seed = num(&mut it, "--seed"),
            "--l2-lat" => l2_lat = Some(num(&mut it, "--l2-lat") as u32),
            "--mem-lat" => mem_lat = Some(num(&mut it, "--mem-lat") as u32),
            "--scq-depth" => scq_depth = Some(num(&mut it, "--scq-depth") as usize),
            "--threads" => {
                // 0 = one worker per host core (the default).
                bench::pool::set_threads(num(&mut it, "--threads") as usize);
            }
            "--addr" => {
                addr = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--addr needs a host:port");
                    std::process::exit(2);
                }));
            }
            "--sample" => sample = Some(pair(&mut it, "--sample", "detail:skip")),
            "--a" => {
                let (l2, mem) = pair(&mut it, "--a", "l2-lat:mem-lat");
                cfg_a = Some((l2 as u32, mem as u32));
            }
            "--b" => {
                let (l2, mem) = pair(&mut it, "--b", "l2-lat:mem-lat");
                cfg_b = Some((l2 as u32, mem as u32));
            }
            "--workers" => workers = num(&mut it, "--workers") as usize,
            "--queue-depth" => queue_depth = num(&mut it, "--queue-depth") as usize,
            "--max-conns" => max_conns = num(&mut it, "--max-conns") as usize,
            "--cache-bytes" => cache_bytes = Some(num(&mut it, "--cache-bytes") as usize),
            "--idle-timeout-ms" => idle_timeout_ms = Some(num(&mut it, "--idle-timeout-ms")),
            "--log-level" => {
                let v = it.next().unwrap_or_default();
                log_level = Some(Level::parse(&v).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                }));
            }
            "--log-format" => {
                let v = it.next().unwrap_or_default();
                log_format = Some(LogFormat::parse(&v).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                }));
            }
            "--log-file" => {
                log_file = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--log-file needs a path");
                    std::process::exit(2);
                }));
            }
            "--slow-request-ms" => slow_request_ms = Some(num(&mut it, "--slow-request-ms")),
            "--speculation" => speculation = true,
            "--deny-warnings" => deny_warnings = true,
            "--shard-of" => {
                let v = it.next().unwrap_or_default();
                shard_of = v
                    .split_once('/')
                    .and_then(|(k, n)| Some((k.parse().ok()?, n.parse().ok()?)))
                    .or_else(|| {
                        eprintln!("--shard-of needs <k/N> (e.g. `0/2`)");
                        std::process::exit(2);
                    });
            }
            "--peers" => {
                let v = it.next().unwrap_or_default();
                peers = v
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if peers.is_empty() {
                    eprintln!("--peers needs a comma-separated list of host:port addresses");
                    std::process::exit(2);
                }
            }
            "--conns" => conns = num(&mut it, "--conns") as usize,
            "--rounds" => rounds = num(&mut it, "--rounds") as usize,
            "--cache-dir" => {
                cache_dir = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--cache-dir needs a directory path");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [{}] \
                     [report|diag|trace|check|telemetry|sample|bisect <workload>] \
                     [--format text|csv|json] [--scale test|paper|large] [--seed N] [--threads N] \
                     [check <workload> [--speculation] [--deny-warnings]] \
                     [--l2-lat N] [--mem-lat N] [--scq-depth N] [--scheduler ready|scan] \
                     [--sample <detail>:<skip>] [--a <l2>:<mem>] [--b <l2>:<mem>] \
                     [--trace <out.json>] [--trace-filter <cat,..|all>] [--metrics-interval N] \
                     [--event-cap N] [--stream] \
                     [serve --addr <host:port> --workers N --queue-depth N --cache-dir <dir> \
                     --max-conns N --cache-bytes N --idle-timeout-ms N \
                     --log-level off|error|warn|info|debug --log-format text|json \
                     --log-file <path> --slow-request-ms N \
                     --shard-of <k/N> --peers <a,b,c>] \
                     [connscale --conns N --rounds N [--addr <host:port>] \
                     [--log-level .. --log-format .. --log-file <path>]] \
                     [sweep [fig8|fig9|fig10|table1] [--addr <host:port>]]",
                    COMMANDS.join("|")
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}` (see --help)");
                std::process::exit(2);
            }
            other => {
                if !explicit_cmd {
                    cmd = other.to_string();
                    explicit_cmd = true;
                } else if arg.is_none() {
                    arg = Some(other.to_string());
                } else {
                    eprintln!("unexpected argument `{other}` (see --help)");
                    std::process::exit(2);
                }
            }
        }
    }
    // `repro --trace out.json` with no subcommand means "trace a run":
    // default to the telemetry command rather than the full suite.
    if trace_path.is_some() && !explicit_cmd {
        cmd = "telemetry".to_string();
    }
    if !COMMANDS.contains(&cmd.as_str()) {
        eprintln!("unknown command `{}` (use {})", cmd, COMMANDS.join("|"));
        std::process::exit(2);
    }
    if arg.is_some()
        && !matches!(
            cmd.as_str(),
            "trace" | "report" | "diag" | "check" | "telemetry" | "sample" | "bisect" | "sweep"
        )
    {
        eprintln!("command `{cmd}` takes no argument (see --help)");
        std::process::exit(2);
    }
    if stream && cmd != "telemetry" {
        eprintln!("--stream only applies to the telemetry command");
        std::process::exit(2);
    }
    if json && cmd != "simspeed" && !(cmd == "check" && speculation) {
        eprintln!("--format json only applies to simspeed and check --speculation");
        std::process::exit(2);
    }
    if (speculation || deny_warnings) && cmd != "check" {
        eprintln!("--speculation/--deny-warnings only apply to the check command");
        std::process::exit(2);
    }
    if (cfg_a.is_some() || cfg_b.is_some()) && cmd != "bisect" {
        eprintln!("--a/--b only apply to the bisect command");
        std::process::exit(2);
    }
    if (shard_of.is_some() || !peers.is_empty()) && cmd != "serve" {
        eprintln!("--shard-of/--peers only apply to the serve command");
        std::process::exit(2);
    }
    Args {
        cmd,
        arg,
        scale,
        seed,
        csv,
        l2_lat,
        mem_lat,
        scq_depth,
        scheduler,
        trace_path,
        trace_filter,
        metrics_interval,
        event_cap,
        stream,
        addr,
        workers,
        queue_depth,
        cache_dir,
        max_conns,
        cache_bytes,
        idle_timeout_ms,
        log_level,
        log_format,
        log_file,
        slow_request_ms,
        shard_of,
        peers,
        conns,
        rounds,
        sample,
        cfg_a,
        cfg_b,
        json,
        speculation,
        deny_warnings,
    }
}

/// Every subcommand, in help order.
const COMMANDS: [&str; 22] = [
    "params",
    "fig8",
    "table2",
    "fig9",
    "fig10",
    "csv",
    "trace",
    "report",
    "diag",
    "check",
    "telemetry",
    "micro",
    "extras",
    "related",
    "ablate",
    "sample",
    "bisect",
    "simspeed",
    "serve",
    "connscale",
    "sweep",
    "all",
];

/// Assembles the machine configuration from the CLI overrides through the
/// validating builder; a rejected sweep exits 2 with the typed
/// `ConfigError` message.
fn build_config(args: &Args) -> MachineConfig {
    let paper = MachineConfig::paper();
    let mut b = MachineConfig::builder().latency(
        args.l2_lat.unwrap_or(paper.mem.l2.latency),
        args.mem_lat.unwrap_or(paper.mem.mem_latency),
    );
    if let Some(depth) = args.scq_depth {
        let mut q = paper.queues;
        q.scq = depth;
        b = b.queues(q);
    }
    if let Some(s) = args.scheduler {
        b = b.scheduler(s);
    }
    b.build().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

/// Assembles the service configuration from the CLI flags through the
/// validating builder; a rejected configuration (`--workers 0`,
/// `--idle-timeout-ms 0`, a malformed `--addr`) exits 2 with the typed
/// [`hidisc_serve::ServeConfigError`] message — the same contract as
/// [`build_config`] for machine sweeps.
fn build_serve_config(args: &Args) -> ServeConfig {
    let mut b = ServeConfig::builder()
        .addr(
            args.addr
                .clone()
                .unwrap_or_else(|| "127.0.0.1:8080".to_string()),
        )
        .queue_depth(args.queue_depth)
        .max_connections(args.max_conns);
    if args.workers > 0 {
        b = b.workers(args.workers);
    }
    if let Some(dir) = &args.cache_dir {
        b = b.cache_dir(dir);
    }
    if let Some(bytes) = args.cache_bytes {
        b = b.cache_bytes(bytes);
    }
    if let Some(ms) = args.idle_timeout_ms {
        b = b.idle_timeout_ms(ms);
    }
    // `repro serve` logs at info unless told otherwise; `--log-level off`
    // silences it.
    b = b.log_level(args.log_level.unwrap_or(Some(Level::Info)));
    if let Some(f) = args.log_format {
        b = b.log_format(f);
    }
    if let Some(path) = &args.log_file {
        b = b.log_file(path);
    }
    if let Some(ms) = args.slow_request_ms {
        b = b.slow_request_ms(ms);
    }
    if let Some((index, count)) = args.shard_of {
        b = b.shard_of(index, count);
    }
    if !args.peers.is_empty() {
        b = b.peers(args.peers.clone());
    }
    b.build().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

/// `repro serve`: run the simulation service until `POST /v1/shutdown`.
fn serve(args: &Args) {
    let cfg = build_serve_config(args);
    let addr = cfg.addr().to_string();
    let (workers, queue_depth) = (cfg.workers(), cfg.queue_depth());
    let cache = cfg
        .cache_dir()
        .map(|p| format!("{} + disk {}", cfg.cache_bytes(), p.display()))
        .unwrap_or_else(|| format!("{} bytes, memory-only", cfg.cache_bytes()));
    let shard = cfg
        .shard()
        .map(|s| format!(", shard {}/{}", s.index, s.count))
        .unwrap_or_default();
    let svc = Service::start(cfg).unwrap_or_else(|e| {
        eprintln!("cannot serve on {addr}: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "serving on http://{} ({workers} worker(s), queue depth {queue_depth}, \
         cache {cache}{shard}) — POST /v1/shutdown to stop",
        svc.addr(),
    );
    svc.wait();
    eprintln!("shut down cleanly");
}

/// `repro connscale`: ramp `--conns` keep-alive connections (against an
/// in-process service, or `--addr` for an external one), drive
/// `--rounds` request rounds over all of them, and emit the
/// `BENCH_serve.json` document on stdout. Exits 1 if any connection was
/// dropped or any response arrived without an `X-Request-Id` — CI treats
/// a lossy or id-less ramp as a regression.
fn connscale(args: &Args) {
    use std::net::ToSocketAddrs;
    let svc = match &args.addr {
        Some(_) => None,
        None => {
            // Self-contained: an in-process service on an ephemeral port.
            // One simulation worker suffices — the ramp probes /healthz,
            // and its held-wall sweep is 8 test-scale points. The idle
            // timeout is
            // stretched so connections established early in a large ramp
            // are not swept while the tail is still connecting (against an
            // external --addr target, the operator sets --idle-timeout-ms).
            let mut b = ServeConfig::builder()
                .workers(1)
                .max_connections(args.conns + 64)
                .idle_timeout_ms(600_000)
                // Off unless asked: the ramp target is a measurement
                // device, and CI uses the logged/unlogged pair to gate
                // logging overhead.
                .log_level(args.log_level.unwrap_or(None));
            if let Some(f) = args.log_format {
                b = b.log_format(f);
            }
            if let Some(path) = &args.log_file {
                b = b.log_file(path);
            }
            let cfg = b.build().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
            Some(Service::start(cfg).unwrap_or_else(|e| {
                eprintln!("cannot start the ramp target service: {e}");
                std::process::exit(2);
            }))
        }
    };
    let addr = match (&svc, &args.addr) {
        (Some(s), _) => s.addr(),
        (None, Some(a)) => a
            .to_socket_addrs()
            .ok()
            .and_then(|mut it| it.next())
            .unwrap_or_else(|| {
                eprintln!("--addr `{a}` does not resolve to host:port");
                std::process::exit(2);
            }),
        (None, None) => unreachable!("svc exists exactly when --addr is absent"),
    };
    let mut rc = hidisc_serve::scale::RampConfig::new(addr);
    rc.conns = args.conns;
    rc.rounds = args.rounds;
    let report = hidisc_serve::scale::ramp(&rc).unwrap_or_else(|e| {
        eprintln!("connection ramp failed: {e}");
        std::process::exit(1);
    });
    print!("{}", report.to_json());
    eprintln!(
        "connscale: {}/{} connections established, {} dropped, \
         {} request(s) over {} round(s), {} missing request id(s), {:.0} resp/s, \
         held-wall sweep {} point(s) at {:.1} points/s",
        report.established,
        report.conns,
        report.dropped,
        report.requests_sent,
        report.rounds,
        report.missing_request_id,
        report.rps(),
        report.sweep_points,
        report.sweep_points_per_sec(),
    );
    if let Some(svc) = svc {
        svc.shutdown();
    }
    if report.dropped > 0 || report.established < report.conns || report.missing_request_id > 0 {
        std::process::exit(1);
    }
}

/// The sweep-request JSON for one render target, assembled from the CLI
/// flags: the paper suite (or fig10's latency pair) at the chosen scale
/// and seed, with any `--l2-lat`/`--mem-lat`/`--scq-depth`/`--scheduler`
/// overrides as single-element axes.
fn sweep_body(args: &Args, render: &str) -> String {
    let scale = match args.scale {
        Scale::Test => "test",
        Scale::Paper => "paper",
        Scale::Large => "large",
    };
    let mut body = String::from("{\"workloads\":[");
    let workloads: Vec<&str> = if render == "fig10" {
        vec!["pointer", "neighborhood"]
    } else {
        hidisc_workloads::suite(Scale::Test, 0)
            .iter()
            .map(|w| w.name)
            .collect()
    };
    body.push_str(
        &workloads
            .iter()
            .map(|w| format!("\"{w}\""))
            .collect::<Vec<_>>()
            .join(","),
    );
    body.push_str(&format!(
        "],\"scales\":[\"{scale}\"],\"seeds\":[{}]",
        args.seed
    ));
    if render == "fig10" {
        let lats: Vec<String> = bench::FIG10_LATENCIES
            .iter()
            .map(|(l2, mem)| format!("[{l2},{mem}]"))
            .collect();
        body.push_str(&format!(",\"latencies\":[{}]", lats.join(",")));
    } else if args.l2_lat.is_some() || args.mem_lat.is_some() {
        let paper = MachineConfig::paper();
        body.push_str(&format!(
            ",\"latencies\":[[{},{}]]",
            args.l2_lat.unwrap_or(paper.mem.l2.latency),
            args.mem_lat.unwrap_or(paper.mem.mem_latency)
        ));
    }
    if let Some(depth) = args.scq_depth {
        body.push_str(&format!(",\"scq_depths\":[{depth}]"));
    }
    if let Some(s) = args.scheduler {
        let name = match s {
            Scheduler::ReadyList => "ready",
            Scheduler::Scan => "scan",
        };
        body.push_str(&format!(",\"schedulers\":[\"{name}\"]"));
    }
    body.push_str(&format!(",\"render\":\"{render}\",\"stream\":true}}"));
    body
}

/// Extracts `"key":"value"` / `"key":N` from a flat JSON line.
fn sweep_json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn sweep_json_num(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// `repro sweep [fig8|fig9|fig10|table1]`: drive a batch sweep on a
/// running service (`--addr`, default 127.0.0.1:8080). Per-point NDJSON
/// progress streams to stderr as the service emits it; the rendered CSV
/// goes to stdout. Exits 1 if any point failed or the service refused
/// the sweep — cached points cost no simulation, so re-rendering a
/// finished sweep is instant.
fn sweep(args: &Args) {
    use std::time::Duration;
    let render = args.arg.as_deref().unwrap_or("fig8");
    if let Err(e) = hidisc_sweep::Render::parse(render) {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let addr = args
        .addr
        .clone()
        .unwrap_or_else(|| "127.0.0.1:8080".to_string());
    let deadline = Duration::from_secs(600);
    let body = sweep_body(args, render);
    eprintln!(
        "sweeping {render} (scale {:?}, seed {}) on http://{addr} ...",
        args.scale, args.seed
    );
    let resp = hidisc_serve::client::http_request(&addr, "POST", "/v1/sweep", &body, deadline)
        .unwrap_or_else(|e| {
            eprintln!("sweep request failed: {e}");
            std::process::exit(1);
        });
    if resp.status != 200 {
        eprintln!("service refused the sweep ({}): {}", resp.status, resp.body);
        std::process::exit(1);
    }
    for line in resp.body.lines() {
        eprintln!("{line}");
    }
    let first = resp.body.lines().next().unwrap_or_default();
    let id = sweep_json_str(first, "sweep").unwrap_or_else(|| {
        eprintln!("the stream carried no sweep id");
        std::process::exit(1);
    });
    let summary = resp.body.lines().last().unwrap_or_default();
    let failed = sweep_json_num(summary, "failed").unwrap_or(0);
    if failed > 0 {
        eprintln!("sweep {id}: {failed} point(s) failed — not rendering");
        std::process::exit(1);
    }
    let path = format!("/v1/sweeps/{id}/render");
    let rendered = hidisc_serve::client::http_request(&addr, "GET", &path, "", deadline)
        .unwrap_or_else(|e| {
            eprintln!("render request failed: {e}");
            std::process::exit(1);
        });
    if rendered.status != 200 {
        eprintln!(
            "service could not render the sweep ({}): {}",
            rendered.status, rendered.body
        );
        std::process::exit(1);
    }
    print!("{}", rendered.body);
}

/// `repro telemetry --stream`: serialise the trace while the machine
/// runs (bounded memory at any trace length).
fn telemetry_streamed(args: &Args, cfg: MachineConfig, trace: TraceConfig, name: &str) {
    fn summary<W>(run: &bench::StreamedRun<W>) -> String {
        format!(
            "streamed {} event(s), dropped {} (buffer cap {})\n",
            run.streamed_events, run.dropped, run.cap
        )
    }
    match &args.trace_path {
        Some(path) => {
            let file = std::fs::File::create(path).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            let out = std::io::BufWriter::new(file);
            let run = bench::telemetry_stream(name, args.scale, args.seed, cfg, trace, out)
                .unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(2);
                });
            eprint!("{}", summary(&run));
            eprintln!("wrote {path} — load it at https://ui.perfetto.dev");
            if let Some(m) = run.metrics {
                print!("{}", bench::MetricsReport(m).render(args.csv));
            }
        }
        None => {
            let stdout = std::io::stdout();
            let run = bench::telemetry_stream(
                name,
                args.scale,
                args.seed,
                cfg,
                trace,
                std::io::BufWriter::new(stdout.lock()),
            )
            .unwrap_or_else(|e| {
                eprintln!("cannot write the trace to stdout: {e}");
                std::process::exit(2);
            });
            eprint!("{}", summary(&run));
        }
    }
}

fn main() {
    let args = parse_args();
    let cfg = build_config(&args);
    let csv = args.csv;

    if args.cmd == "serve" {
        serve(&args);
        return;
    }
    if args.cmd == "connscale" {
        connscale(&args);
        return;
    }
    if args.cmd == "sweep" {
        sweep(&args);
        return;
    }

    let need_suite = matches!(
        args.cmd.as_str(),
        "fig8" | "table2" | "fig9" | "all" | "csv"
    );
    let results = if need_suite {
        if let Some((detail, skip)) = args.sample {
            eprintln!(
                "running the 7-benchmark suite on 4 machine models \
                 (scale {:?}, seed {}, sampled {detail}:{skip} — cycle counts are estimates)...",
                args.scale, args.seed
            );
            Some(bench::sampling::run_suite_sampled(
                args.scale, args.seed, cfg, detail, skip,
            ))
        } else {
            eprintln!(
                "running the 7-benchmark suite on 4 machine models (scale {:?}, seed {})...",
                args.scale, args.seed
            );
            let (results, sweep_wall_ns) = bench::run_suite_timed(args.scale, args.seed, cfg);
            eprintln!("{}", bench::suite_speed_line(&results, sweep_wall_ns));
            Some(results)
        }
    } else {
        None
    };

    if csv && matches!(args.cmd.as_str(), "trace" | "report" | "diag") {
        eprintln!(
            "command `{}` is an inspection dump with no CSV form",
            args.cmd
        );
        std::process::exit(2);
    }

    match args.cmd.as_str() {
        "params" => print!("{}", bench::Table1Report(cfg).render(csv)),
        "fig8" => {
            print!(
                "{}",
                bench::Fig8Report(bench::fig8(results.as_ref().unwrap())).render(csv)
            )
        }
        "table2" => {
            print!(
                "{}",
                bench::Table2Report(bench::table2(results.as_ref().unwrap())).render(csv)
            )
        }
        "fig9" => {
            print!(
                "{}",
                bench::Fig9Report(bench::fig9(results.as_ref().unwrap())).render(csv)
            )
        }
        "csv" => {
            // Historical shortcut: the three figures as CSV in one stream
            // (equivalent to `--format csv` on each).
            let results = results.as_ref().unwrap();
            print!("{}", bench::Fig8Report(bench::fig8(results)).render_csv());
            println!();
            print!("{}", bench::Fig9Report(bench::fig9(results)).render_csv());
            println!();
            let series = bench::fig10(&["pointer", "neighborhood"], args.scale, args.seed);
            print!("{}", bench::Fig10Report(series).render_csv());
        }
        "fig10" => {
            eprintln!("running the Figure-10 latency sweep (pointer, neighborhood)...");
            let series = bench::fig10(&["pointer", "neighborhood"], args.scale, args.seed);
            print!("{}", bench::Fig10Report(series).render(csv));
        }
        "trace" => {
            let name = args.arg.as_deref().unwrap_or("update");
            print!(
                "{}",
                bench::pipeline_trace(name, Scale::Test, args.seed, 60)
            );
        }
        "report" => {
            let name = args.arg.as_deref().unwrap_or("update");
            print!("{}", bench::separation_report(name, args.scale, args.seed));
        }
        "diag" => {
            let name = args.arg.as_deref().unwrap_or("update");
            print!("{}", bench::diagnostics(name, args.scale, args.seed));
        }
        "check" => {
            let name = args.arg.as_deref().unwrap_or("update");
            if args.speculation {
                let spec = bench::speculation_workload(
                    name,
                    args.scale,
                    args.seed,
                    bench::depths_of(&cfg),
                );
                if args.json {
                    print!("{}", spec.to_json());
                } else {
                    print!("{}", spec.render(csv));
                }
                return;
            }
            let check = bench::check_workload(name, args.scale, args.seed, bench::depths_of(&cfg));
            print!("{}", check.render(csv));
            if !check.passed_with(args.deny_warnings) {
                std::process::exit(1);
            }
        }
        "telemetry" => {
            let name = args.arg.as_deref().unwrap_or("pointer");
            let mut trace = args
                .trace_filter
                .with_metrics_interval(args.metrics_interval);
            if let Some(cap) = args.event_cap {
                trace = trace.with_event_cap(cap);
            }
            eprintln!(
                "tracing {name} on HiDISC (scale {:?}, seed {}, mask {:#07b}, interval {}{})...",
                args.scale,
                args.seed,
                trace.mask,
                trace.metrics_interval,
                if args.stream { ", streamed" } else { "" }
            );
            if args.stream {
                telemetry_streamed(&args, cfg, trace, name);
                return;
            }
            let run = bench::telemetry_run(name, args.scale, args.seed, cfg, trace);
            eprint!("{}", run.summary());
            if let Some(path) = &args.trace_path {
                std::fs::write(path, &run.json).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(2);
                });
                eprintln!(
                    "wrote {path} ({} bytes) — load it at https://ui.perfetto.dev",
                    run.json.len()
                );
                if let Some(m) = run.metrics {
                    print!("{}", bench::MetricsReport(m).render(csv));
                }
            } else {
                // JSON to stdout; it embeds the metrics side table already.
                print!("{}", run.json);
            }
        }
        "micro" => {
            eprintln!("running the micro-kernels (lll1, convolution, saxpy, sdot) on 4 models...");
            let ws = hidisc_workloads::micro::micro_suite(args.scale, args.seed);
            let report = bench::SpeedupReport::from_workloads(
                "Micro-kernels: speed-up over the baseline superscalar",
                &ws,
                cfg,
            );
            print!("{}", report.render(csv));
        }
        "extras" => {
            eprintln!("running the extra Stressmarks (cornerturn, matrix) on 4 models...");
            let ws = hidisc_workloads::extras(args.scale, args.seed);
            let report = bench::SpeedupReport::from_workloads(
                "Extra Stressmarks: speed-up over the baseline superscalar",
                &ws,
                cfg,
            );
            print!("{}", report.render(csv));
        }
        "related" => {
            eprintln!("running the related-work comparison (all 7 benchmarks)...");
            let rows = bench::related_work(
                &[
                    "dm",
                    "raytrace",
                    "pointer",
                    "update",
                    "field",
                    "neighborhood",
                    "tc",
                ],
                args.scale,
                args.seed,
            );
            print!("{}", bench::RelatedReport(rows).render(csv));
        }
        "sample" => {
            let name = args.arg.as_deref().unwrap_or("update");
            let (detail, skip) = args.sample.unwrap_or(bench::sampling::DEFAULT_SAMPLE);
            eprintln!(
                "comparing exact vs sampled ({detail}:{skip}) for {name} on 4 models \
                 (scale {:?}, seed {})...",
                args.scale, args.seed
            );
            let rows = Model::ALL
                .iter()
                .map(|&m| {
                    bench::sampling::compare_sampled(
                        name, args.scale, args.seed, m, cfg, detail, skip,
                    )
                })
                .collect();
            let rep = bench::sampling::SampleReport(rows);
            print!("{}", rep.render(csv));
            if !rep.passed() {
                std::process::exit(1);
            }
        }
        "bisect" => {
            let name = args.arg.as_deref().unwrap_or("pointer");
            let (l2_a, mem_a) = args.cfg_a.unwrap_or((4, 40));
            let (l2_b, mem_b) = args.cfg_b.unwrap_or((16, 160));
            eprintln!(
                "bisecting the first architectural divergence of {name} on HiDISC \
                 between latencies {l2_a}:{mem_a} and {l2_b}:{mem_b}..."
            );
            let r = bench::sampling::bisect(
                name,
                args.scale,
                args.seed,
                Model::HiDisc,
                MachineConfig::paper_with_latency(l2_a, mem_a),
                MachineConfig::paper_with_latency(l2_b, mem_b),
            );
            print!("{}", bench::sampling::BisectReport(r).render(csv));
        }
        "simspeed" => {
            let (detail, skip) = args.sample.unwrap_or(bench::sampling::SIMSPEED_SAMPLE);
            eprintln!(
                "timing the exact suite and the sampled acceptance row \
                 ({}, {detail}:{skip}, scale {:?}, seed {})...",
                bench::sampling::SIMSPEED_WORKLOAD,
                args.scale,
                args.seed
            );
            let rep = bench::sampling::simspeed(
                args.scale,
                args.seed,
                cfg,
                detail,
                skip,
                &[bench::sampling::SIMSPEED_WORKLOAD],
            );
            if args.json {
                print!("{}", rep.render_json());
            } else {
                print!("{}", rep.render(csv));
            }
            if !rep.passed() {
                std::process::exit(1);
            }
        }
        "ablate" => {
            eprintln!("running the ablation study (update, tc, neighborhood, dm)...");
            let rows = bench::ablate(
                &["update", "tc", "neighborhood", "dm"],
                args.scale,
                args.seed,
            );
            print!("{}", bench::AblationReport(rows).render(csv));
        }
        "all" => {
            let results = results.as_ref().unwrap();
            if csv {
                print!("{}", bench::Table1Report(cfg).render_csv());
                println!();
                print!("{}", bench::Fig8Report(bench::fig8(results)).render_csv());
                println!();
                print!(
                    "{}",
                    bench::Table2Report(bench::table2(results)).render_csv()
                );
                println!();
                print!("{}", bench::Fig9Report(bench::fig9(results)).render_csv());
            } else {
                println!(
                    "Table 1: simulation parameters\n{}",
                    bench::Table1Report(cfg).render_text()
                );
                println!("{}", bench::Fig8Report(bench::fig8(results)).render_text());
                println!(
                    "{}",
                    bench::Table2Report(bench::table2(results)).render_text()
                );
                println!("{}", bench::Fig9Report(bench::fig9(results)).render_text());
            }
            eprintln!("running the Figure-10 latency sweep (pointer, neighborhood)...");
            let series = bench::fig10(&["pointer", "neighborhood"], args.scale, args.seed);
            if csv {
                println!();
            }
            print!("{}", bench::Fig10Report(series).render(csv));
        }
        other => unreachable!("command `{other}` was validated in parse_args"),
    }
}
