//! Umbrella crate for the HiDISC simulation suite.
//!
//! Re-exports the public API of every workspace crate so that examples and
//! integration tests can use a single dependency. Downstream users should
//! normally depend on the individual crates (`hidisc`, `hidisc-isa`, ...)
//! directly.

#![forbid(unsafe_code)]

pub use hidisc;
pub use hidisc_isa as isa;
pub use hidisc_lang as lang;
pub use hidisc_mem as mem;
pub use hidisc_ooo as ooo;
pub use hidisc_slicer as slicer;
pub use hidisc_workloads as workloads;

use hidisc_slicer::ExecEnv;
use hidisc_workloads::Workload;

/// Builds the compiler/simulator execution environment of a workload.
pub fn exec_env_of(w: &Workload) -> ExecEnv {
    ExecEnv {
        regs: w.regs.clone(),
        mem: w.mem.clone(),
        max_steps: w.max_steps,
    }
}
